//! The `PackageDb` session: a cheap handle onto a shared core of
//! catalog + partition cache + planner.
//!
//! # Shared state vs. session state
//!
//! The paper's PackageBuilder is a *system* serving many interactive
//! clients, so the state splits in two:
//!
//! * `SharedState` (private) — one per database, behind an `Arc`:
//!   the table **catalog**, the **partition cache**, the **telemetry**
//!   sink, and the lazily spawned worker **pool**. Every session handle
//!   cloned from a `PackageDb` points at the same shared state.
//! * [`PackageDb`] — the cloneable per-client session handle. It adds
//!   only the client's own [`DbConfig`] (solver budgets, routing
//!   threshold, REFINE threads); cloning a session copies the config
//!   and shares everything else.
//!
//! # Locking discipline
//!
//! * The catalog sits behind a reader–writer lock. Executions take the
//!   **read** side just long enough to snapshot `(name, version,
//!   Arc<Table>)` — evaluation then runs entirely on the snapshot, so
//!   readers execute concurrently and writers never wait on a running
//!   query. Table mutations take the **write** side, stamp a fresh
//!   globally-monotone version, and evict stale cache entries.
//! * The partition cache is internally synchronized (see
//!   [`crate::cache`]): concurrent lookups share a read lock, counters
//!   are atomics, and no lock is ever held across a build or an
//!   evaluation.
//! * Cold partitionings are built **single-flight**: the first session
//!   to miss builds (one `Miss`); sessions racing on the same
//!   (table, version, attributes) wait for that build and are served a
//!   `Hit`. A build result is only published if the table version it
//!   was built for is still current.
//! * Executions snapshot the table version at planning time; the cache
//!   only ever serves entries at exactly that version, so a package is
//!   always consistent with the version its execution observed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use paq_core::{Direct, EngineError, Evaluator, QueryFeatures, SketchRefine, SketchRefineOptions};
use paq_exec::ThreadPool;
use paq_lang::{parse_paql, validate, PackageQuery};
use paq_obs::{obs_scope, span, ObsContext, Registry, Trace};
use paq_partition::partitioning::GID_COLUMN;
use paq_partition::{PartitionConfig, Partitioner, Partitioning};
use paq_relational::{Table, Value};
use paq_solver::{SolverConfig, Telemetry};

use paq_store::{
    AckImage, AckKind, MaintenancePolicy, PartitioningImage, Store, StoreConfig, StoreState,
    TableImage, WalOp, WalRecord,
};

use crate::cache::{CacheStats, PartitionCache, PartitionSpec};
use crate::catalog::Catalog;
use crate::durability::{
    observation_from_image, observation_to_image, spec_from_image, spec_to_image, storage_error,
    Durability, DurabilityState, DurabilityStats,
};
use crate::error::{DbError, DbResult};
use crate::execution::{CacheOutcome, Execution, RouteReason, RouterVerdict, Strategy, Timings};
use crate::router::{self, Observation, RouterConfig, RouterDecision, RouterStats, TelemetryRing};

/// Planner routing control for
/// [`PackageDb::execute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Route {
    /// Let the planner pick (the behavior of [`PackageDb::execute`]).
    #[default]
    Auto,
    /// Always evaluate with DIRECT (exact; used by benchmarks and
    /// ablations).
    ForceDirect,
    /// Always evaluate with SKETCHREFINE (approximate; uses the
    /// partition cache, building a partitioning if none is usable).
    ForceSketchRefine,
}

/// Delta-aware partition maintenance (see the "Partition maintenance"
/// section of the README). When enabled, an [`PackageDb::append_row`]
/// no longer invalidates cached partitionings of the table: the new row
/// is **absorbed** — every cached partitioning is patched in place (the
/// row routed to its nearest group, exact group stats recomputed) and
/// re-keyed to the fresh table version, so the next query is still a
/// cache `Hit`. Cold builds partition only the "main" prefix the base
/// build covered and then replay the absorbed delta as patches, so a
/// patched cache entry and a from-scratch build of the same rows are
/// **bit-identical** at every thread count. Once the absorbed delta
/// exceeds [`MaintenanceConfig::delta_threshold`] rows, the append
/// merges instead: the base moves to the full table and stale entries
/// are invalidated (optionally rebuilt in the background).
///
/// This is database-wide state (it changes what the shared cache and
/// WAL replay do), so it is fixed when the database is created —
/// per-session `config_mut` edits to it have no effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceConfig {
    /// Absorb appends instead of invalidating. Off by default: the
    /// invalidate-on-append contract predates this and some callers
    /// depend on it.
    pub enabled: bool,
    /// Maximum absorbed delta (rows past the base build) before an
    /// append merges (invalidates + resets the base) instead of
    /// patching. Group sizes drift past τ by at most this many rows.
    pub delta_threshold: u64,
    /// After a merge, rebuild the just-invalidated partitionings on a
    /// background thread so the next query finds a warm cache instead
    /// of paying the cold build inline. Deterministic tests turn this
    /// off.
    pub background_rebuild: bool,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            enabled: false,
            delta_threshold: 64,
            background_rebuild: true,
        }
    }
}

/// Observability control (see the "Observability" section of the
/// README). Like [`MaintenanceConfig`] this is database-wide: the
/// registry lives on the shared state, so the value in effect at
/// creation time ([`PackageDb::with_config`] / [`PackageDb::open`]) is
/// what counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record metrics and per-request span traces. On by default — a
    /// recorded metric is a read-lock plus relaxed atomics, and the
    /// bench guard (`observability.obs_off_warm_min_roundtrip_ms` in
    /// `BENCH_refine.json`) keeps the warm-path cost honest.
    pub enabled: bool,
    /// Queries whose total wall time reaches this many milliseconds are
    /// captured in the slow-query log ([`PackageDb::slow_queries`]),
    /// rendered span tree included. `None` disables the log.
    pub slow_query_ms: Option<u64>,
    /// Spans recorded per request before the trace starts counting
    /// drops instead of storing.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            slow_query_ms: None,
            trace_capacity: paq_obs::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// One captured slow query (see [`ObsConfig::slow_query_ms`]).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The offending PaQL text.
    pub query: String,
    /// Total wall time of the execution.
    pub total: Duration,
    /// The strategy that ran it.
    pub strategy: Strategy,
    /// The rendered span tree at capture time.
    pub spans: String,
}

/// Observable delta-maintenance counters, shared across all sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Whether delta-aware maintenance is on for this database.
    pub enabled: bool,
    /// The configured absorb-vs-merge threshold.
    pub delta_threshold: u64,
    /// Appends absorbed without invalidating anything.
    pub absorbed_appends: u64,
    /// Cache entries patched in place across all absorbed appends.
    pub patched_entries: u64,
    /// Appends that crossed the threshold and merged (base reset +
    /// invalidation).
    pub merges: u64,
    /// Partitionings rebuilt by the post-merge background pass.
    pub background_rebuilds: u64,
}

/// Per-session configuration. Each cloned session carries its own copy;
/// tuning one client never affects another.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Route to DIRECT when the input table has at most this many rows
    /// (one exact ILP of that size is cheap; the paper's DIRECT curves
    /// stay flat until the solver hits resource limits).
    pub direct_threshold: usize,
    /// Lazily built partitionings target this many groups
    /// (τ = rows / `default_groups`), mirroring
    /// [`SketchRefine`]'s convenience default.
    pub default_groups: usize,
    /// Black-box solver budgets shared by both strategies.
    pub solver: SolverConfig,
    /// SKETCHREFINE tuning (hybrid sketch, fallback ladder, budgets).
    pub sketchrefine: SketchRefineOptions,
    /// When the SKETCHREFINE route reports *possibly false*
    /// infeasibility (§4.4), automatically re-run with DIRECT — the
    /// unpartitioned problem cannot be falsely infeasible. Applies to
    /// [`Route::Auto`] only; forced routes report the raw verdict.
    pub fallback_to_direct: bool,
    /// Cost-based router knobs: with enough execution telemetry the
    /// planner routes by per-strategy predicted cost instead of the
    /// static `direct_threshold` (which stays the cold-start
    /// fallback). See [`crate::router`].
    pub router: RouterConfig,
    /// Delta-aware partition maintenance. Database-wide: the value in
    /// effect when the database is created ([`PackageDb::with_config`]
    /// / [`PackageDb::open`]) is fixed into the shared state; later
    /// per-session edits have no effect.
    pub maintenance: MaintenanceConfig,
    /// Metrics + tracing control. Database-wide, like `maintenance`.
    pub obs: ObsConfig,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            direct_threshold: 2_000,
            default_groups: 10,
            solver: SolverConfig::default(),
            sketchrefine: SketchRefineOptions::default(),
            fallback_to_direct: true,
            router: RouterConfig::default(),
            maintenance: MaintenanceConfig::default(),
            obs: ObsConfig::default(),
        }
    }
}

/// One registered table's row in a [`DbStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Registered name (original casing).
    pub name: String,
    /// Row count at snapshot time.
    pub rows: usize,
    /// Catalog version at snapshot time.
    pub version: u64,
}

/// Point-in-time snapshot of a database's observable state, returned by
/// [`PackageDb::stats`] — the self-describing summary a serving layer
/// reports to remote clients.
#[derive(Debug, Clone)]
pub struct DbStats {
    /// Every registered table, sorted by name.
    pub tables: Vec<TableStats>,
    /// Shared partition-cache counters.
    pub cache: CacheStats,
    /// Shared cost-based-router counters (telemetry samples held,
    /// model vs fallback decisions).
    pub router: RouterStats,
    /// Delta-maintenance counters (absorbed appends, patched entries,
    /// merges, background rebuilds).
    pub maintenance: MaintenanceStats,
    /// Durability counters; `None` for in-memory databases.
    pub durability: Option<DurabilityStats>,
}

/// Key of one in-flight partitioning build: (table key, version,
/// partitioning attributes).
type BuildKey = (String, u64, Vec<String>);

/// Rendezvous for sessions racing on the same cold partitioning: the
/// builder flips the `done` flag once finished, stashing its artifact
/// so waiters can adopt it directly — even when a racing mutation
/// suppressed the cache publish, the artifact is still exactly right
/// for the snapshot version both sides planned against (the version is
/// part of the rendezvous key). A `None` result means the build failed;
/// waiters then retry, possibly becoming the next builder.
#[derive(Debug, Default)]
struct BuildSlot {
    /// Deliberately `std::sync::Mutex` (not the compat `parking_lot`
    /// one) so the mutex and the [`Condvar`] it pairs with come from
    /// one API — real parking_lot guards would not satisfy
    /// `Condvar::wait`.
    state: StdMutex<(bool, Option<Arc<Partitioning>>)>,
    cv: Condvar,
}

impl BuildSlot {
    fn wait(&self) -> Option<Arc<Partitioning>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !state.0 {
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.1.clone()
    }

    fn finish(&self, result: Option<Arc<Partitioning>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = (true, result);
        drop(state);
        self.cv.notify_all();
    }
}

/// Removes the build slot from the pending map and wakes waiters on
/// drop — so a failed (or panicked) build can never strand them. The
/// builder sets `result` on success; an unwind leaves it `None`.
struct BuildGuard<'a> {
    shared: &'a SharedState,
    key: BuildKey,
    slot: Arc<BuildSlot>,
    result: Option<Arc<Partitioning>>,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        self.shared.pending_builds.lock().remove(&self.key);
        self.slot.finish(self.result.take());
    }
}

/// The shared core of a database: everything that is one-per-database
/// rather than one-per-client. See the [module docs](self) for the
/// locking discipline.
#[derive(Debug, Default)]
struct SharedState {
    catalog: RwLock<Catalog>,
    cache: PartitionCache,
    telemetry: RwLock<Option<Arc<Telemetry>>>,
    /// Worker pools shared by every session (wave-based REFINE and
    /// offline partitioning builds), keyed by thread count: spawned
    /// lazily on the first multi-threaded request and kept across
    /// queries, so sessions tuned to the same size share one pool and
    /// sessions tuned differently never tear each other's pool down.
    /// Capped at [`SharedState::MAX_POOLS`] distinct sizes so a
    /// long-lived process whose clients sweep many thread counts
    /// cannot accumulate parked OS threads without bound.
    pools: Mutex<HashMap<usize, Arc<ThreadPool>>>,
    /// In-flight lazily-built partitionings, for single-flight builds.
    pending_builds: Mutex<HashMap<BuildKey, Arc<BuildSlot>>>,
    /// Execution-telemetry history feeding the cost-based router —
    /// one ring per database, shared by every session (like the
    /// partition cache, routing knowledge is a property of the data
    /// and workload, not of one client).
    router_ring: Mutex<TelemetryRing>,
    /// `Route::Auto` plans decided by the warm cost model.
    router_model_decisions: AtomicU64,
    /// `Route::Auto` plans decided by the static threshold fallback.
    router_fallback_decisions: AtomicU64,
    /// Opt-in durable storage (see [`crate::durability`]): `None` for
    /// ordinary in-memory databases, so every existing path pays
    /// nothing. Lock order: catalog before store, always.
    durability: Option<DurabilityState>,
    /// Delta-maintenance policy, fixed at database creation (it
    /// changes the shared cache's append behavior, so it cannot vary
    /// per session).
    maintenance: MaintenanceConfig,
    /// Per-table base-build row counts under delta maintenance, keyed
    /// by catalog key: rows `[0, main_rows)` were present when the
    /// table's base partitioning was (re)built; rows past it are the
    /// absorbed delta. Lock order: catalog before this map, always;
    /// never held across a build or an evaluation.
    delta: Mutex<HashMap<String, u64>>,
    /// The database's metrics registry. `Registry::default()` is
    /// disabled, so in-test `SharedState::default()` construction stays
    /// silent; [`PackageDb::with_config`] and [`PackageDb::open`]
    /// enable it per [`ObsConfig::enabled`].
    obs: Registry,
    /// Observability knobs fixed at creation (slow-query threshold,
    /// trace capacity).
    obs_config: ObsConfig,
    /// Most recent captured slow queries, newest last, bounded at
    /// [`SharedState::MAX_SLOW_QUERIES`].
    slow_queries: Mutex<Vec<SlowQuery>>,
    /// Appends absorbed without invalidation.
    absorbed_appends: AtomicU64,
    /// Cache entries patched across all absorbs.
    patched_entries: AtomicU64,
    /// Appends that crossed the threshold and merged.
    delta_merges: AtomicU64,
    /// Partitionings rebuilt by the post-merge background pass.
    background_rebuilds: AtomicU64,
}

impl SharedState {
    /// Most distinct pool sizes kept alive at once; realistic
    /// deployments use one or two.
    const MAX_POOLS: usize = 4;

    /// Slow-query log bound: old entries fall off the front.
    const MAX_SLOW_QUERIES: usize = 32;

    /// The shared worker pool at the requested size (`None` when
    /// single-threaded). Every session asking for the same size gets
    /// the same pool; at capacity, the smallest other pool is retired
    /// (in-flight executions keep their `Arc`, so its workers wind
    /// down only once they finish).
    fn pool(&self, threads: usize) -> Option<Arc<ThreadPool>> {
        if threads <= 1 {
            return None;
        }
        let mut pools = self.pools.lock();
        if !pools.contains_key(&threads) && pools.len() >= Self::MAX_POOLS {
            if let Some(&evict) = pools.keys().min() {
                pools.remove(&evict);
            }
        }
        Some(Arc::clone(
            pools
                .entry(threads)
                .or_insert_with(|| Arc::new(ThreadPool::new(threads))),
        ))
    }
}

/// A package-query session: named tables, cached offline partitionings,
/// and a planner that routes every query to DIRECT or SKETCHREFINE.
///
/// This is the system front door the paper describes (PackageBuilder on
/// top of a DBMS): register tables once, then throw PaQL at it — from
/// any number of concurrent clients. `PackageDb` is a cheap cloneable
/// *session handle*: [`PackageDb::session`] (or `clone()`) yields a new
/// handle onto the same catalog, partition cache, and worker pool,
/// carrying its own [`DbConfig`]. All catalog and execution methods
/// take `&self`, so sessions can be driven from plain shared
/// references across threads.
///
/// ```
/// use paq_db::PackageDb;
/// use paq_relational::{DataType, Schema, Table, Value};
///
/// let mut table = Table::new(Schema::from_pairs(&[
///     ("name", DataType::Str),
///     ("gluten", DataType::Str),
///     ("kcal", DataType::Float),
///     ("saturated_fat", DataType::Float),
/// ]));
/// for (name, gluten, kcal, fat) in [
///     ("oats", "free", 0.8, 1.0),
///     ("bread", "full", 0.9, 2.0),
///     ("salad", "free", 0.5, 0.2),
///     ("steak", "free", 1.1, 5.0),
///     ("rice", "free", 0.7, 0.4),
/// ] {
///     table.push_row(vec![name.into(), gluten.into(), kcal.into(), fat.into()]).unwrap();
/// }
///
/// let db = PackageDb::new();
/// db.register_table("Recipes", table);
///
/// // `FROM Recipes R` now resolves by name (case-insensitively); a
/// // second session shares the catalog.
/// let session = db.session();
/// let exec = session
///     .execute(
///         "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
///          WHERE R.gluten = 'free' \
///          SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 \
///          MINIMIZE SUM(P.saturated_fat)",
///     )
///     .unwrap();
/// assert_eq!(exec.package.cardinality(), 3);
/// println!("{}", exec.explain()); // why DIRECT/SKETCHREFINE was chosen
/// ```
#[derive(Debug, Clone)]
pub struct PackageDb {
    shared: Arc<SharedState>,
    config: DbConfig,
}

impl Default for PackageDb {
    fn default() -> Self {
        Self::new()
    }
}

impl PackageDb {
    /// A fresh database (and its first session) with default
    /// configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// The shared registry described by `obs`.
    fn registry_for(obs: &ObsConfig) -> Registry {
        if obs.enabled {
            Registry::new()
        } else {
            Registry::disabled()
        }
    }

    /// A fresh database (and its first session) with explicit
    /// configuration. The router's telemetry-ring capacity is fixed
    /// here, from `config.router.capacity` — it is shared state, so
    /// later per-session capacity changes have no effect.
    pub fn with_config(config: DbConfig) -> Self {
        let shared = SharedState {
            router_ring: Mutex::new(TelemetryRing::with_capacity(config.router.capacity)),
            maintenance: config.maintenance,
            obs: Self::registry_for(&config.obs),
            obs_config: config.obs,
            ..SharedState::default()
        };
        PackageDb {
            shared: Arc::new(shared),
            config,
        }
    }

    /// Open a **durable** database rooted at `durability.dir`,
    /// recovering whatever a previous process persisted there: tables
    /// re-enter the catalog at their original versions, partitionings
    /// re-enter the cache (so the first SKETCHREFINE query after a
    /// restart is a `Hit`, not a rebuild), and router telemetry
    /// warm-starts the cost model. From then on every catalog mutation
    /// is logged to the WAL before it is acknowledged.
    ///
    /// Recovery replays the WAL over the latest snapshot in parallel
    /// (`durability.replay_threads`), partitioned by table; the result
    /// is deterministic at every thread count. A corrupt snapshot or a
    /// corrupt (fully present) WAL record refuses to open with
    /// [`DbError::Storage`]; a torn WAL tail — the normal crash
    /// artifact — is silently truncated.
    pub fn open(config: DbConfig, durability: Durability) -> DbResult<PackageDb> {
        let replay_pool =
            (durability.replay_threads > 1).then(|| ThreadPool::new(durability.replay_threads));
        // Created before the store so recovery latencies land in it too.
        let obs = Self::registry_for(&config.obs);
        let store_config = StoreConfig {
            dir: durability.dir,
            sync: durability.sync,
            injector: durability.injector,
            obs: obs.clone(),
            // Replay mirrors the live absorb-vs-merge decision, so
            // recovery republishes patched partitionings instead of
            // dropping them on every logged append.
            maintenance: config.maintenance.enabled.then_some(MaintenancePolicy {
                delta_threshold: config.maintenance.delta_threshold,
            }),
        };
        let (store, recovered) =
            Store::open_with_pool(store_config, replay_pool.as_ref()).map_err(storage_error)?;
        let state = recovered.state;

        let mut catalog = Catalog::default();
        let mut delta = HashMap::new();
        let recovered_tables = state.tables.len() as u64;
        for image in state.tables {
            if config.maintenance.enabled {
                delta.insert(Catalog::key(&image.name), image.main_rows);
            }
            catalog.restore(image.name, image.table, image.version);
        }
        catalog.ensure_version_floor(state.last_version);

        let cache = PartitionCache::default();
        let recovered_partitionings = state.partitionings.len() as u64;
        for image in state.partitionings {
            let spec = spec_from_image(image.spec);
            if let PartitionSpec::External { id } = spec {
                cache.ensure_external_floor(id);
            }
            cache.insert(
                image.table_key,
                image.version,
                image.attributes,
                spec,
                image.partitioning,
            );
        }

        let mut ring = TelemetryRing::with_capacity(config.router.capacity);
        let recovered_telemetry = state.telemetry.len() as u64;
        for image in &state.telemetry {
            ring.record(observation_from_image(image));
        }

        let recovered_acks = state.acked_tokens.len() as u64;
        let shared = SharedState {
            catalog: RwLock::new(catalog),
            cache,
            router_ring: Mutex::new(ring),
            durability: Some(DurabilityState {
                store: Mutex::new(store),
                snapshot_every: durability.snapshot_every,
                recovered_tables,
                recovered_partitionings,
                recovered_telemetry,
                recovered_acks,
                wal_replayed_records: recovered.wal_replayed_records,
                wal_tail_dropped_bytes: recovered.wal_tail_dropped_bytes,
                acked: Mutex::new(DurabilityState::bounded_acks(state.acked_tokens)),
            }),
            maintenance: config.maintenance,
            obs,
            obs_config: config.obs,
            delta: Mutex::new(delta),
            ..SharedState::default()
        };
        Ok(PackageDb {
            shared: Arc::new(shared),
            config,
        })
    }

    /// `true` when this database persists its state (opened via
    /// [`PackageDb::open`]).
    pub fn is_durable(&self) -> bool {
        self.shared.durability.is_some()
    }

    /// Durability counters, `None` for in-memory databases.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.shared.durability.as_ref().map(DurabilityState::stats)
    }

    /// A handle onto the database's shared metrics registry. All
    /// sessions (and the subsystems they drive: cache, store, solver,
    /// server) record into this one registry; clone it freely. Disabled
    /// — every operation a no-op, snapshots empty — when
    /// `DbConfig.obs.enabled` was `false` at creation.
    pub fn obs_registry(&self) -> Registry {
        self.shared.obs.clone()
    }

    /// The captured slow queries, oldest first (bounded at the most
    /// recent 32). Empty unless [`ObsConfig::slow_query_ms`] is set.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.slow_queries.lock().clone()
    }

    /// Force buffered WAL appends to disk. Meaningful under
    /// [`crate::durability::SyncPolicy::Manual`] (a server flushing at
    /// its own cadence); under `Always` every append already synced.
    /// No-op for in-memory databases.
    pub fn sync_wal(&self) -> DbResult<()> {
        match &self.shared.durability {
            Some(d) => d.store.lock().sync().map_err(storage_error),
            None => Ok(()),
        }
    }

    /// Capture the full engine state — catalog, partition cache, router
    /// telemetry — into a snapshot file and truncate the WAL. Returns
    /// the snapshot's size in bytes. [`DbError::Storage`] for in-memory
    /// databases.
    ///
    /// The catalog read lock is held across capture *and* the snapshot
    /// write, so no mutation can be logged and then lost to a
    /// concurrent WAL truncation: everything the snapshot misses is in
    /// the WAL that survives it (nothing), and everything appended
    /// after it replays on top.
    pub fn snapshot_now(&self) -> DbResult<u64> {
        let Some(durable) = &self.shared.durability else {
            return Err(DbError::Storage {
                detail: "snapshot_now on an in-memory database (open it with PackageDb::open)"
                    .into(),
            });
        };
        let catalog = self.shared.catalog.read();
        let tables = {
            // Delta lock after the catalog lock, released before any
            // further work (see the lock-order note in
            // `crate::durability`).
            let delta = self.shared.delta.lock();
            catalog
                .names()
                .iter()
                .filter_map(|name| catalog.resolve(name).ok())
                .map(|entry| TableImage {
                    name: entry.name().to_owned(),
                    version: entry.version(),
                    main_rows: delta
                        .get(&Catalog::key(entry.name()))
                        .copied()
                        .unwrap_or(entry.table().num_rows() as u64),
                    table: entry.snapshot(),
                })
                .collect()
        };
        let partitionings = self
            .shared
            .cache
            .export()
            .into_iter()
            .map(
                |(table_key, version, attributes, spec, partitioning)| PartitioningImage {
                    table_key,
                    version,
                    attributes,
                    spec: spec_to_image(&spec),
                    partitioning,
                },
            )
            .collect();
        // Ring lock taken and released before the store lock (see the
        // lock-order note in `crate::durability`).
        let telemetry = {
            let ring = self.shared.router_ring.lock();
            ring.snapshot().iter().map(observation_to_image).collect()
        };
        let state = StoreState {
            last_version: catalog.last_version(),
            tables,
            partitionings,
            telemetry,
            acked_tokens: durable.acked.lock().iter().copied().collect(),
        };
        durable.store.lock().snapshot(&state).map_err(storage_error)
    }

    /// Append `record` to the WAL. Called with the catalog write lock
    /// held, so file order equals LSN order with no gaps.
    fn log_record(&self, record: &WalRecord) -> DbResult<()> {
        match &self.shared.durability {
            Some(d) => d.store.lock().append(record).map_err(storage_error),
            None => Ok(()),
        }
    }

    /// Remember a client's acked idempotency token (durable databases
    /// only). Called with the catalog write lock held, right after the
    /// mutation's WAL record was appended, so the ack window and the
    /// log agree on exactly which mutations were acknowledged.
    fn record_ack(&self, token: Option<u64>, version: u64, kind: AckKind) {
        let (Some(token), Some(durable)) = (token, &self.shared.durability) else {
            return;
        };
        let mut acked = durable.acked.lock();
        if acked.len() >= DurabilityState::ACK_CAPACITY {
            acked.pop_front();
        }
        acked.push_back(AckImage {
            token,
            version,
            kind,
        });
    }

    /// The acked `(token → version)` pairs this database remembers,
    /// oldest first: what recovery restored plus what this process has
    /// acked since (bounded to the newest 1024). Empty for in-memory
    /// databases. A serving layer seeds its duplicate-detection window
    /// from this at startup, so a mutation retried across a restart is
    /// re-acknowledged with its original version instead of re-applied.
    pub fn acked_mutations(&self) -> Vec<AckImage> {
        match &self.shared.durability {
            Some(d) => d.acked.lock().iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot automatically once enough records accumulate. Called
    /// *after* the catalog write lock is released (the lock is not
    /// re-entrant; `snapshot_now` retakes the read side). Best-effort:
    /// a failure poisons the store, surfaces in the stats counters, and
    /// will resurface as a typed error on the next explicit durability
    /// call.
    fn maybe_auto_snapshot(&self) {
        let Some(durable) = &self.shared.durability else {
            return;
        };
        let Some(every) = durable.snapshot_every else {
            return;
        };
        if durable.store.lock().stats().records_since_snapshot >= every {
            let _ = self.snapshot_now();
        }
    }

    /// A new session handle onto the same shared state: catalog,
    /// partition cache, telemetry, and worker pool are shared; the
    /// [`DbConfig`] is copied, so the new session can be tuned
    /// independently ([`PackageDb::config_mut`]).
    pub fn session(&self) -> PackageDb {
        self.clone()
    }

    /// `true` when `other` is a session onto the same shared state
    /// (catalog, cache, pool) as `self`.
    pub fn shares_state_with(&self, other: &PackageDb) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// The session's configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Mutable access to the session's configuration (solver budgets,
    /// routing thresholds, REFINE threads, …). Per-session: other
    /// handles onto the same database are unaffected. Takes effect on
    /// the next execution; a changed `sketchrefine.threads` lazily
    /// picks (or spawns) the shared pool of that size.
    pub fn config_mut(&mut self) -> &mut DbConfig {
        &mut self.config
    }

    /// Attach a shared telemetry sink; every solver call made on behalf
    /// of *any* session of this database reports into it. The sink is
    /// also wired to the database's metrics registry, so solver
    /// counters (`solver.calls`, `solver.solve`, …) surface through
    /// [`PackageDb::obs_registry`] alongside everything else.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        telemetry.attach_registry(self.shared.obs.clone());
        *self.shared.telemetry.write() = Some(telemetry);
    }

    // ------------------------------------------------------------------
    // Cost-based router
    // ------------------------------------------------------------------

    /// Append one observation to the shared router-telemetry history —
    /// the warm-start hook for callers replaying persisted telemetry
    /// (clean executions record themselves automatically). The ring
    /// keeps the newest [`RouterConfig::capacity`] observations, as
    /// configured when the database was created.
    pub fn record_router_observation(
        &self,
        features: QueryFeatures,
        strategy: Strategy,
        cost: Duration,
    ) {
        self.shared.router_ring.lock().record(Observation {
            features,
            strategy,
            cost,
        });
    }

    /// Observable router counters: telemetry samples currently held
    /// per strategy, and how many `Route::Auto` plans the model vs the
    /// threshold fallback decided. Shared across all sessions.
    pub fn router_stats(&self) -> RouterStats {
        let (direct_samples, sketchrefine_samples) = self.shared.router_ring.lock().counts();
        RouterStats {
            direct_samples,
            sketchrefine_samples,
            model_decisions: self.shared.router_model_decisions.load(Ordering::Acquire),
            fallback_decisions: self
                .shared
                .router_fallback_decisions
                .load(Ordering::Acquire),
        }
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Register (or replace) a table under `name`; returns the catalog
    /// version. Replacing invalidates cached partitionings of the old
    /// contents. Visible to every session immediately. On a durable
    /// database the registration is logged before this returns; a WAL
    /// failure cannot be surfaced through the infallible signature, so
    /// it fail-stops the store instead (poisoned; see
    /// [`PackageDb::durability_stats`] and the next fallible durability
    /// call).
    pub fn register_table(&self, name: impl Into<String>, table: Table) -> u64 {
        self.register_table_with_token(name, table, None)
    }

    /// [`PackageDb::register_table`] carrying an optional client
    /// idempotency token. On a durable database the token rides the
    /// WAL record and enters the durable ack window
    /// ([`PackageDb::acked_mutations`]), so a serving layer can
    /// re-acknowledge the registration after a restart instead of
    /// applying it twice. `None` behaves exactly like
    /// [`PackageDb::register_table`].
    pub fn register_table_with_token(
        &self,
        name: impl Into<String>,
        table: Table,
        token: Option<u64>,
    ) -> u64 {
        let name = name.into();
        let key = Catalog::key(&name);
        let version = {
            let mut catalog = self.shared.catalog.write();
            let hold_start = Instant::now();
            let version = catalog.register(name.clone(), table);
            if self.shared.maintenance.enabled {
                // A replacement resets the delta base: the new contents
                // are all "main", nothing is absorbed yet.
                let rows = catalog
                    .resolve(&name)
                    .expect("just registered")
                    .table()
                    .num_rows();
                self.shared.delta.lock().insert(key.clone(), rows as u64);
            }
            if self.is_durable() {
                let table = catalog.resolve(&name).expect("just registered").snapshot();
                if self
                    .log_record(&WalRecord {
                        lsn: version,
                        op: WalOp::RegisterTable { name, table, token },
                    })
                    .is_ok()
                {
                    self.record_ack(token, version, AckKind::Register);
                }
            }
            self.shared.obs.incr("db.table.register");
            self.shared
                .obs
                .observe("db.catalog.write_hold", hold_start.elapsed());
            version
        };
        self.shared.cache.invalidate_stale(&key, version);
        self.maybe_auto_snapshot();
        version
    }

    /// Remove a table and every cached partitioning of it. On a durable
    /// database the drop is logged (at its own fresh version) before
    /// this returns.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let log_result = {
            let mut catalog = self.shared.catalog.write();
            let (entry, version) = catalog.drop_table(name)?;
            self.log_record(&WalRecord {
                lsn: version,
                op: WalOp::DropTable {
                    name: entry.name().to_owned(),
                },
            })
        };
        self.shared.delta.lock().remove(&Catalog::key(name));
        self.shared.cache.invalidate_table(&Catalog::key(name));
        self.maybe_auto_snapshot();
        log_result
    }

    /// Snapshot a registered table (case-insensitive resolution). The
    /// returned `Arc` stays valid — and unchanged — however the catalog
    /// mutates afterwards.
    pub fn table(&self, name: &str) -> DbResult<Arc<Table>> {
        Ok(self.shared.catalog.read().resolve(name)?.snapshot())
    }

    /// The current version stamp of a registered table.
    pub fn table_version(&self, name: &str) -> DbResult<u64> {
        Ok(self.shared.catalog.read().resolve(name)?.version())
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.shared.catalog.read().names()
    }

    /// Mutate a table in place. On success, stamps a fresh version and
    /// invalidates cached partitionings built over the old contents;
    /// returns `f`'s output and the new version. A failed mutation
    /// (which must leave the table unchanged, see [`Catalog::mutate`])
    /// keeps version and cache intact. Snapshots taken by concurrent
    /// executions keep the pre-mutation contents (copy-on-write).
    ///
    /// `f` runs **under the catalog write lock** and must not call back
    /// into this database (no `table()`, `execute()`, … on any session
    /// of it — locks here are not re-entrant, so a callback deadlocks).
    /// Read whatever you need via [`PackageDb::table`] *before* the
    /// call; `f` receives the authoritative current contents anyway.
    pub fn mutate_table<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> paq_relational::RelResult<R>,
    ) -> DbResult<(R, u64)> {
        let key = Catalog::key(name);
        let (result, current, log_result) = {
            let mut catalog = self.shared.catalog.write();
            let before = catalog.version_of(&key);
            let result = catalog.mutate(name, f);
            // Evict on the error path too: a closure that failed
            // *after* observably changing the table still got a fresh
            // version stamped (see [`Catalog::mutate`]), and eviction
            // belongs to the mutation path — lookups never evict.
            let current = match &result {
                Ok((_, version)) => Some(*version),
                Err(_) => catalog.version_of(&key),
            };
            // Log exactly when a fresh version was stamped — i.e. when
            // the table observably changed, including the
            // partial-mutation-then-error path. The full after-image
            // goes to the WAL, still under the write lock.
            let log_result = match current {
                Some(version) if before != Some(version) => {
                    let entry = catalog.resolve(name).expect("version proves it exists");
                    self.log_record(&WalRecord {
                        lsn: version,
                        op: WalOp::MutateTable {
                            name: entry.name().to_owned(),
                            table: entry.snapshot(),
                        },
                    })
                }
                _ => Ok(()),
            };
            // An arbitrary in-place mutation defeats delta tracking:
            // reset the base to the full new contents (the next append
            // starts a fresh delta).
            if self.shared.maintenance.enabled && current.is_some() && before != current {
                if let Ok(entry) = catalog.resolve(name) {
                    self.shared
                        .delta
                        .lock()
                        .insert(key.clone(), entry.table().num_rows() as u64);
                }
            }
            (result, current, log_result)
        };
        if let Some(version) = current {
            self.shared.cache.invalidate_stale(&key, version);
        }
        self.maybe_auto_snapshot();
        let out = result?;
        log_result?;
        Ok(out)
    }

    /// Append one row to a registered table; returns the new version.
    /// The durable form logs the row alone (a small delta record), not
    /// a full after-image — [`Table::push_row`] validates before
    /// mutating, so a failed append changes nothing and logs nothing.
    pub fn append_row(&self, name: &str, row: Vec<Value>) -> DbResult<u64> {
        self.append_row_with_token(name, row, None)
    }

    /// [`PackageDb::append_row`] carrying an optional client
    /// idempotency token (see
    /// [`PackageDb::register_table_with_token`]).
    ///
    /// Under [`MaintenanceConfig::enabled`] this is where delta-aware
    /// maintenance happens, still inside the catalog write critical
    /// section (so absorbs are serialized in version order and cannot
    /// race a cold build's publish, which holds the catalog read lock):
    ///
    /// * **absorb** — while the table has grown by at most
    ///   [`MaintenanceConfig::delta_threshold`] rows past its base
    ///   build, every cached partitioning is patched in place and
    ///   re-keyed to the fresh version; nothing is invalidated and the
    ///   next query is still a `Hit`;
    /// * **merge** — past the threshold, the base moves up to the full
    ///   table, stale entries are invalidated, and (when
    ///   [`MaintenanceConfig::background_rebuild`] is on) the exact
    ///   artifacts queries were using are rebuilt on a detached thread.
    pub fn append_row_with_token(
        &self,
        name: &str,
        row: Vec<Value>,
        token: Option<u64>,
    ) -> DbResult<u64> {
        let m = self.shared.maintenance;
        let key = Catalog::key(name);
        let mut rebuilds: Vec<(Vec<String>, Arc<Table>, u64, usize)> = Vec::new();
        let (version, log_result) = {
            let mut catalog = self.shared.catalog.write();
            let hold_start = Instant::now();
            let before = catalog.version_of(&key);
            let row_for_log = self.is_durable().then(|| row.clone());
            let ((), version) = catalog.mutate(name, |t| t.push_row(row))?;
            let log_result = match row_for_log {
                Some(row) => {
                    let display = catalog
                        .resolve(name)
                        .expect("just mutated")
                        .name()
                        .to_owned();
                    let result = self.log_record(&WalRecord {
                        lsn: version,
                        op: WalOp::AppendRow {
                            name: display,
                            row,
                            token,
                        },
                    });
                    if result.is_ok() {
                        self.record_ack(token, version, AckKind::Append);
                    }
                    result
                }
                None => Ok(()),
            };
            if m.enabled {
                let table = catalog.resolve(name).expect("just mutated").snapshot();
                let rows = table.num_rows() as u64;
                // Same decision — and the same arithmetic — as WAL
                // replay's `MaintenancePolicy`, so a recovered database
                // lands on the same absorb/merge history.
                let absorb = {
                    let mut delta = self.shared.delta.lock();
                    // A table registered before maintenance was enabled
                    // has no entry; its base is everything up to this
                    // append.
                    let main = delta.entry(key.clone()).or_insert(rows - 1);
                    if rows.saturating_sub(*main) <= m.delta_threshold {
                        true
                    } else {
                        *main = rows;
                        false
                    }
                };
                if absorb {
                    let from = before.expect("append bumped an existing table");
                    let (patched, _evicted) =
                        self.shared.cache.absorb_append(&key, from, version, &table);
                    self.shared.absorbed_appends.fetch_add(1, Ordering::AcqRel);
                    self.shared
                        .patched_entries
                        .fetch_add(patched, Ordering::AcqRel);
                    self.shared.obs.incr("db.cache.absorb");
                    self.shared.obs.add("db.cache.patched", patched);
                } else {
                    self.shared.delta_merges.fetch_add(1, Ordering::AcqRel);
                    self.shared.obs.incr("db.cache.merge");
                    let evicted = self.shared.cache.invalidate_stale_collect(&key, version);
                    if m.background_rebuild {
                        for attrs in evicted {
                            rebuilds.push((attrs, Arc::clone(&table), version, table.num_rows()));
                        }
                    }
                }
            }
            self.shared.obs.incr("db.row.append");
            self.shared
                .obs
                .observe("db.catalog.write_hold", hold_start.elapsed());
            (version, log_result)
        };
        if !m.enabled {
            self.shared.cache.invalidate_stale(&key, version);
        }
        if !rebuilds.is_empty() {
            self.spawn_background_rebuilds(key, rebuilds);
        }
        self.maybe_auto_snapshot();
        log_result?;
        Ok(version)
    }

    /// Rebuild just-invalidated partitionings on a detached OS thread so
    /// the first query after a merge finds a warm cache instead of
    /// paying the cold build inline. Deliberately *not* a shared-pool
    /// job: rebuild work outlives the append that spawned it, and a
    /// pool job joining its own pool's wave would deadlock. Each job
    /// re-checks the table version before building, and the
    /// single-flight machinery dedups it against any racing foreground
    /// query building the same artifact.
    fn spawn_background_rebuilds(
        &self,
        key: String,
        jobs: Vec<(Vec<String>, Arc<Table>, u64, usize)>,
    ) {
        let db = self.clone();
        std::thread::spawn(move || {
            for (attrs, table, version, build_base) in jobs {
                if db.shared.catalog.read().version_of(&key) != Some(version) {
                    continue; // the table moved on; a fresher pass owns it
                }
                let pool = db.shared.pool(db.config.sketchrefine.threads);
                if db
                    .obtain_partitioning(&key, version, attrs, &table, pool.as_ref(), build_base)
                    .is_ok()
                {
                    db.shared.background_rebuilds.fetch_add(1, Ordering::AcqRel);
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // Partition cache
    // ------------------------------------------------------------------

    /// Install an externally built partitioning (radius-limited,
    /// dynamically extracted from a quad-tree hierarchy, …) for the
    /// table's *current* contents. Subsequent SKETCHREFINE routes — on
    /// any session — reuse it as a cache hit until the table mutates.
    pub fn install_partitioning(&self, name: &str, partitioning: Partitioning) -> DbResult<()> {
        // Hold the catalog read lock across the insert so the version
        // the entry is keyed by cannot go stale mid-install.
        let catalog = self.shared.catalog.read();
        let entry = catalog.resolve(name)?;
        let rows = entry.table().num_rows();
        if !partitioning.is_disjoint_cover(rows) {
            return Err(DbError::InvalidPartitioning {
                relation: entry.name().to_owned(),
                detail: format!(
                    "groups must disjointly cover all {rows} rows of the current table"
                ),
            });
        }
        let version = entry.version();
        let attributes = partitioning.attributes.clone();
        let id = self.shared.cache.next_external_id();
        self.shared.cache.insert(
            Catalog::key(name),
            version,
            attributes,
            PartitionSpec::External { id },
            Arc::new(partitioning),
        );
        Ok(())
    }

    /// Observable partition-cache counters (hits, misses,
    /// invalidations, live entries), shared across all sessions.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Point-in-time snapshot of the database's observable state: every
    /// registered table (name, row count, version) plus the shared
    /// partition-cache counters. One brief catalog read lock covers the
    /// table listing, so the rows/version pairs are mutually consistent;
    /// this is what a serving layer reports to remote clients without
    /// shipping table contents.
    pub fn stats(&self) -> DbStats {
        let tables = {
            let catalog = self.shared.catalog.read();
            let mut tables: Vec<TableStats> = catalog
                .names()
                .iter()
                .filter_map(|name| catalog.resolve(name).ok())
                .map(|entry| TableStats {
                    name: entry.name().to_owned(),
                    rows: entry.table().num_rows(),
                    version: entry.version(),
                })
                .collect();
            tables.sort_by(|a, b| a.name.cmp(&b.name));
            tables
        };
        DbStats {
            tables,
            cache: self.shared.cache.stats(),
            router: self.router_stats(),
            maintenance: self.maintenance_stats(),
            durability: self.durability_stats(),
        }
    }

    /// Observable delta-maintenance counters (absorbed appends, patched
    /// entries, merges, background rebuilds), shared across all
    /// sessions. All zeros when maintenance is off.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        MaintenanceStats {
            enabled: self.shared.maintenance.enabled,
            delta_threshold: self.shared.maintenance.delta_threshold,
            absorbed_appends: self.shared.absorbed_appends.load(Ordering::Acquire),
            patched_entries: self.shared.patched_entries.load(Ordering::Acquire),
            merges: self.shared.delta_merges.load(Ordering::Acquire),
            background_rebuilds: self.shared.background_rebuilds.load(Ordering::Acquire),
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Parse and execute a PaQL query, letting the planner route it.
    pub fn execute(&self, paql: &str) -> DbResult<Execution> {
        let query = parse_paql(paql)?;
        self.execute_with(&query, Route::Auto)
    }

    /// Execute an already-built query (from [`paq_lang::Paql`] or the
    /// parser), letting the planner route it.
    pub fn execute_query(&self, query: impl Into<PackageQuery>) -> DbResult<Execution> {
        self.execute_with(&query.into(), Route::Auto)
    }

    /// Execute with explicit routing control.
    pub fn execute_with(&self, query: &PackageQuery, route: Route) -> DbResult<Execution> {
        self.execute_inner(query, route, None)
    }

    /// Execute with SKETCHREFINE over a caller-supplied offline
    /// partitioning of the table's current contents, bypassing the
    /// partition cache (the cache is neither consulted nor populated).
    /// This is the benchmark/ablation entry point: the same database —
    /// catalog, solver budgets, worker pool — evaluates many queries
    /// against many partitionings without cross-talk between them.
    pub fn execute_with_partitioning(
        &self,
        query: &PackageQuery,
        partitioning: Arc<Partitioning>,
    ) -> DbResult<Execution> {
        self.execute_inner(query, Route::ForceSketchRefine, Some(partitioning))
    }

    fn execute_inner(
        &self,
        query: &PackageQuery,
        route: Route,
        provided: Option<Arc<Partitioning>>,
    ) -> DbResult<Execution> {
        let total_start = Instant::now();

        // Observability: capture a per-request trace when anything will
        // read it, and install the ambient context so spans opened
        // anywhere below (planner, cache, evaluators) land here. The
        // trace is passive — nothing reads it mid-flight — so capture
        // cannot perturb the bit-identical determinism guarantees.
        let obs = self.shared.obs.clone();
        let trace = (obs.is_enabled() || self.shared.obs_config.slow_query_ms.is_some())
            .then(|| Arc::new(Trace::new(self.shared.obs_config.trace_capacity)));
        let _obs_scope = obs_scope(ObsContext {
            registry: obs.clone(),
            trace: trace.clone(),
        });
        let execute_span = span("execute");
        let plan_span = span("plan");

        // --- plan: snapshot, check schema, route ----------------------
        // The catalog read lock is held only for the snapshot; from
        // here on the execution works exclusively on `table` (the
        // contents at `table_version`), so concurrent mutations can
        // proceed and cannot skew this query.
        let (relation, key, table_version, table, build_base) = {
            let catalog = self.shared.catalog.read();
            let entry = catalog.resolve(&query.relation)?;
            let key = Catalog::key(entry.name());
            // Under delta maintenance a cold build partitions only the
            // base prefix and replays the absorbed delta as ordered
            // patches, so it lands bit-identical to a cache entry
            // patched live (see `obtain_partitioning`). The base is
            // snapshotted with the version, under the same read lock.
            let build_base = if self.shared.maintenance.enabled {
                self.shared
                    .delta
                    .lock()
                    .get(&key)
                    .map(|&m| m as usize)
                    .unwrap_or_else(|| entry.table().num_rows())
            } else {
                entry.table().num_rows()
            };
            (
                entry.name().to_owned(),
                key,
                entry.version(),
                entry.snapshot(),
                build_base,
            )
        };
        let rows = table.num_rows();

        let missing = missing_attributes(query, &table);
        if !missing.is_empty() {
            return Err(DbError::SchemaMismatch { relation, missing });
        }
        validate(query, table.schema())?;

        let partition_attrs = partition_attributes(query, &table);
        let features = QueryFeatures::extract(query, rows, self.config.default_groups);
        let (mut strategy, reason, verdict) = match route {
            Route::ForceDirect => (Strategy::Direct, RouteReason::Forced, RouterVerdict::Pinned),
            Route::ForceSketchRefine => (
                Strategy::SketchRefine,
                RouteReason::Forced,
                RouterVerdict::Pinned,
            ),
            Route::Auto => {
                // The model is only consulted where SKETCHREFINE is
                // actually executable (bounded REPEAT, something to
                // partition on) — elsewhere DIRECT is the only plan
                // and the static ladder explains why. With too little
                // telemetry the decision is a cold start and the
                // ladder below reproduces the pre-router planner
                // bit-identically.
                let decision = if self.config.router.enabled
                    && query.max_multiplicity().is_some()
                    && !partition_attrs.is_empty()
                {
                    router::decide(
                        &features,
                        &self.shared.router_ring.lock().snapshot(),
                        &self.config.router,
                    )
                } else {
                    let (direct_samples, sketchrefine_samples) =
                        self.shared.router_ring.lock().counts();
                    RouterDecision::ColdStart {
                        direct_samples,
                        sketchrefine_samples,
                    }
                };
                match decision {
                    RouterDecision::Model(predicted) => {
                        self.shared
                            .router_model_decisions
                            .fetch_add(1, Ordering::AcqRel);
                        obs.incr("db.route.model");
                        (
                            predicted.cheaper(),
                            RouteReason::CostModel,
                            RouterVerdict::Model(predicted),
                        )
                    }
                    RouterDecision::ColdStart {
                        direct_samples,
                        sketchrefine_samples,
                    } => {
                        self.shared
                            .router_fallback_decisions
                            .fetch_add(1, Ordering::AcqRel);
                        obs.incr("db.route.fallback");
                        let verdict = RouterVerdict::Fallback {
                            direct_samples,
                            sketchrefine_samples,
                        };
                        let (strategy, reason) = if query.max_multiplicity().is_none() {
                            (Strategy::Direct, RouteReason::UnboundedRepeat)
                        } else if rows <= self.config.direct_threshold {
                            (
                                Strategy::Direct,
                                RouteReason::SmallTable {
                                    rows,
                                    threshold: self.config.direct_threshold,
                                },
                            )
                        } else if partition_attrs.is_empty() {
                            (Strategy::Direct, RouteReason::NoPartitionAttributes)
                        } else {
                            (
                                Strategy::SketchRefine,
                                RouteReason::LargeTable {
                                    rows,
                                    threshold: self.config.direct_threshold,
                                },
                            )
                        };
                        (strategy, reason, verdict)
                    }
                }
            }
        };
        drop(plan_span);
        let plan = total_start.elapsed();

        // --- evaluate -------------------------------------------------
        let mut cache = CacheOutcome::NotUsed;
        let mut partitioning_time = Duration::ZERO;
        let mut report = None;
        let mut fell_back_to_direct = false;

        // The catalog resolved the relation and validated the query
        // above; skip the evaluators' catalog-less binding check.
        let _scope = paq_core::catalog_scope();

        let evaluate_span = span("evaluate");
        let evaluate_start = Instant::now();
        let package = match strategy {
            Strategy::Direct => self.direct_evaluator().evaluate(query, &table)?,
            Strategy::SketchRefine => {
                // One shared pool serves the offline build and
                // wave-based REFINE alike, across all sessions.
                let pool = self.shared.pool(self.config.sketchrefine.threads);
                let (partitioning, outcome) = if let Some(p) = provided {
                    if !p.is_disjoint_cover(rows) {
                        return Err(DbError::InvalidPartitioning {
                            relation,
                            detail: format!(
                                "groups must disjointly cover all {rows} rows of the current table"
                            ),
                        });
                    }
                    let groups = p.num_groups();
                    let attributes = p.attributes.clone();
                    (p, CacheOutcome::Provided { groups, attributes })
                } else if partition_attrs.is_empty() {
                    return Err(DbError::Engine(EngineError::Unsupported(
                        "SKETCHREFINE needs at least one numeric attribute to partition on".into(),
                    )));
                } else {
                    let (p, outcome, build_time) = self.obtain_partitioning(
                        &key,
                        table_version,
                        partition_attrs,
                        &table,
                        pool.as_ref(),
                        build_base,
                    )?;
                    partitioning_time = build_time;
                    (p, outcome)
                };
                cache = outcome;

                match self.sketchrefine_evaluator(pool).evaluate_with_report(
                    query,
                    &table,
                    &partitioning,
                ) {
                    Ok((pkg, r)) => {
                        report = Some(r);
                        pkg
                    }
                    Err(EngineError::Infeasible {
                        possibly_false: true,
                    }) if route == Route::Auto && self.config.fallback_to_direct => {
                        // §4.4: the unpartitioned problem cannot be
                        // falsely infeasible — settle the verdict with
                        // DIRECT.
                        fell_back_to_direct = true;
                        strategy = Strategy::Direct;
                        self.direct_evaluator().evaluate(query, &table)?
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        let evaluate = evaluate_start.elapsed() - partitioning_time;
        drop(evaluate_span);

        // Feed the observed cost back into the shared telemetry ring —
        // every clean execution is training signal, whether the route
        // was model-chosen, threshold-chosen, or pinned (benchmarks
        // forcing both strategies are exactly how the model warms up).
        // Two exclusions keep the signal clean: the §4.4 DIRECT re-run
        // (its evaluate time mixes the failed SKETCHREFINE attempt
        // with the DIRECT solve) and unbounded-REPEAT executions
        // (encoded as `repeat_bound = 0`, the numeric *bottom* of an
        // axis they semantically max out — training on them would
        // invert the feature for ordinary bounded queries, and the
        // model never routes them anyway).
        if self.config.router.enabled && features.repeat_bound > 0 {
            let observed = match (strategy, &report) {
                (Strategy::SketchRefine, Some(r)) => {
                    Some((Strategy::SketchRefine, r.observed_cost()))
                }
                (Strategy::Direct, _) if !fell_back_to_direct => Some((Strategy::Direct, evaluate)),
                _ => None,
            };
            if let Some((observed_strategy, cost)) = observed {
                self.record_router_observation(features, observed_strategy, cost);
            }
        }

        drop(execute_span);
        let total = total_start.elapsed();
        match strategy {
            Strategy::Direct => obs.incr("db.execute.direct"),
            Strategy::SketchRefine => obs.incr("db.execute.sketchrefine"),
        }
        if fell_back_to_direct {
            obs.incr("db.fallback_to_direct");
        }

        if let (Some(trace_ref), Some(threshold)) = (&trace, self.shared.obs_config.slow_query_ms) {
            if total >= Duration::from_millis(threshold) {
                obs.incr("db.slow_queries");
                let mut log = self.shared.slow_queries.lock();
                if log.len() >= SharedState::MAX_SLOW_QUERIES {
                    log.remove(0);
                }
                log.push(SlowQuery {
                    query: query.to_string(),
                    total,
                    strategy,
                    spans: trace_ref.render(),
                });
            }
        }

        Ok(Execution {
            package,
            relation,
            rows,
            table_version,
            strategy,
            reason,
            router: verdict,
            cache,
            report,
            fell_back_to_direct,
            timings: Timings {
                plan,
                partitioning: partitioning_time,
                evaluate,
                total,
            },
            trace,
        })
    }

    /// Serve (or lazily build) the partitioning for `table` at
    /// `version` on the attributes `attrs` — single-flight: racing
    /// sessions produce exactly one `Miss` (the builder) and `Hit`s
    /// (everyone served from the cache, including waiters).
    /// `build_base` is the row count the base partitioning covers
    /// (always `table.num_rows()` when maintenance is off): a cold
    /// build partitions rows `[0, build_base)` and then replays rows
    /// `[build_base, num_rows)` as ordered patches — the canonical
    /// delta-aware artifact, bit-identical to a cache entry patched
    /// live by absorbed appends, at every thread count.
    fn obtain_partitioning(
        &self,
        key: &str,
        version: u64,
        attrs: Vec<String>,
        table: &Table,
        pool: Option<&Arc<ThreadPool>>,
        build_base: usize,
    ) -> DbResult<(Arc<Partitioning>, CacheOutcome, Duration)> {
        loop {
            if let Some((p, attributes, _)) = self.shared.cache.lookup(key, version, &attrs) {
                self.shared.obs.incr("db.cache.hit");
                let groups = p.num_groups();
                return Ok((p, CacheOutcome::Hit { groups, attributes }, Duration::ZERO));
            }
            // Miss: either adopt an in-flight build of the same
            // artifact or claim the build ourselves. The re-check under
            // the pending lock closes the race with a builder that
            // published between our lookup and here.
            let build_key = (key.to_owned(), version, attrs.clone());
            enum Role {
                Build(Arc<BuildSlot>),
                Wait(Arc<BuildSlot>),
            }
            let role = {
                let mut pending = self.shared.pending_builds.lock();
                if let Some((p, attributes, _)) = self.shared.cache.lookup(key, version, &attrs) {
                    self.shared.obs.incr("db.cache.hit");
                    let groups = p.num_groups();
                    return Ok((p, CacheOutcome::Hit { groups, attributes }, Duration::ZERO));
                }
                match pending.get(&build_key) {
                    Some(slot) => Role::Wait(Arc::clone(slot)),
                    None => {
                        let slot = Arc::new(BuildSlot::default());
                        pending.insert(build_key.clone(), Arc::clone(&slot));
                        Role::Build(slot)
                    }
                }
            };
            match role {
                Role::Wait(slot) => {
                    // The time spent blocked on another session's
                    // build is partitioning cost from this execution's
                    // point of view; report it so explain() shows why
                    // a "hit" was slow.
                    let wait_span = span("partition.wait");
                    let wait_start = Instant::now();
                    let Some(shared_build) = slot.wait() else {
                        drop(wait_span);
                        // The build failed; retry, possibly as the
                        // next builder.
                        continue;
                    };
                    let waited = wait_start.elapsed();
                    drop(wait_span);
                    self.shared.obs.incr("db.cache.hit");
                    self.shared.obs.observe("db.cache.wait", waited);
                    // Prefer the published cache entry (normal hit
                    // bookkeeping, LRU refresh); when a racing
                    // mutation suppressed the publish, adopt the
                    // builder's artifact directly — it was built for
                    // exactly the snapshot version we planned against,
                    // and every waiter sharing it avoids re-running
                    // the same doomed build.
                    if let Some((p, attributes, _)) = self.shared.cache.lookup(key, version, &attrs)
                    {
                        let groups = p.num_groups();
                        return Ok((p, CacheOutcome::Hit { groups, attributes }, waited));
                    }
                    self.shared.cache.record_hit();
                    let groups = shared_build.num_groups();
                    return Ok((
                        shared_build,
                        CacheOutcome::Hit {
                            groups,
                            attributes: attrs,
                        },
                        waited,
                    ));
                }
                Role::Build(slot) => {
                    // Wakes waiters on drop — even if the build errors
                    // or panics — after any successful publish below.
                    let mut guard = BuildGuard {
                        shared: &self.shared,
                        key: build_key,
                        slot,
                        result: None,
                    };
                    self.shared.cache.record_miss();
                    self.shared.obs.incr("db.cache.miss");
                    // τ comes from the base prefix, not the live row
                    // count: a patched cache entry and this cold build
                    // must agree on the spec to be bit-identical.
                    let tau = (build_base / self.config.default_groups.max(1)).max(2);
                    let build_span = span("partition.build");
                    let start = Instant::now();
                    let partitioner =
                        Partitioner::new(PartitionConfig::by_size(attrs.clone(), tau));
                    // The offline build shares the REFINE pool: leaf
                    // statistics are embarrassingly parallel and the
                    // result is identical. Partition the base prefix,
                    // then replay the absorbed delta as patches (a
                    // no-op loop when maintenance is off).
                    let mut built = match pool {
                        Some(pool) => {
                            partitioner.partition_prefix_with_pool(table, build_base, pool)?
                        }
                        None => partitioner.partition_prefix(table, build_base)?,
                    };
                    for row in build_base..table.num_rows() {
                        built.patch_append(table, row)?;
                    }
                    let build_time = start.elapsed();
                    drop(build_span);
                    self.shared.obs.observe("db.cache.build", build_time);
                    let built = Arc::new(built);
                    // Publish only if the snapshot we built against is
                    // still the table's current version; a mutation
                    // racing the build must not get a stale artifact
                    // parked in the cache after its own invalidation
                    // pass already ran. The catalog read guard is held
                    // *across* the insert (same catalog → cache order
                    // as `install_partitioning`), so no mutation can
                    // stamp a fresh version between the check and the
                    // publish.
                    {
                        let catalog = self.shared.catalog.read();
                        if catalog.version_of(key) == Some(version) {
                            self.shared.cache.insert(
                                key.to_owned(),
                                version,
                                attrs.clone(),
                                PartitionSpec::BySize { tau },
                                Arc::clone(&built),
                            );
                        }
                    }
                    guard.result = Some(Arc::clone(&built));
                    let groups = built.num_groups();
                    return Ok((
                        built,
                        CacheOutcome::Miss {
                            groups,
                            attributes: attrs,
                        },
                        build_time,
                    ));
                }
            }
        }
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.shared.telemetry.read().clone()
    }

    fn direct_evaluator(&self) -> Direct {
        let d = Direct::new(self.config.solver.clone());
        match self.telemetry() {
            Some(t) => d.with_telemetry(t),
            None => d,
        }
    }

    fn sketchrefine_evaluator(&self, pool: Option<Arc<ThreadPool>>) -> SketchRefine {
        let sr = SketchRefine::new(self.config.solver.clone())
            .with_options(self.config.sketchrefine.clone());
        let sr = match pool {
            Some(pool) => sr.with_pool(pool),
            None => sr,
        };
        match self.telemetry() {
            Some(t) => sr.with_telemetry(t),
            None => sr,
        }
    }
}

/// Query-referenced attributes (global predicates, objective, and WHERE
/// columns) missing from the table's schema.
fn missing_attributes(query: &PackageQuery, table: &Table) -> Vec<String> {
    let mut referenced = query.query_attributes();
    if let Some(w) = &query.where_clause {
        referenced.extend(w.referenced_columns());
    }
    referenced.sort();
    referenced.dedup();
    referenced
        .into_iter()
        .filter(|a| !table.schema().contains(a))
        .collect()
}

/// Numeric attributes to partition on: the query's attributes when
/// usable, otherwise every numeric column (minus the reserved `gid`).
fn partition_attributes(query: &PackageQuery, table: &Table) -> Vec<String> {
    let numeric = |a: &String| {
        table
            .schema()
            .column(a)
            .map(|def| def.ty.is_numeric())
            .unwrap_or(false)
    };
    let mut attrs: Vec<String> = query
        .query_attributes()
        .into_iter()
        .filter(|a| a != GID_COLUMN && numeric(a))
        .collect();
    if attrs.is_empty() {
        attrs = table
            .schema()
            .numeric_names()
            .into_iter()
            .filter(|a| *a != GID_COLUMN)
            .map(str::to_owned)
            .collect();
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions must be freely shareable across threads.
    #[test]
    fn package_db_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PackageDb>();
        assert_send_sync::<SharedState>();
    }

    #[test]
    fn stats_snapshot_lists_tables_sorted_with_versions() {
        use paq_relational::{DataType, Schema, Table, Value};
        let db = PackageDb::new();
        assert!(db.stats().tables.is_empty());
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        let vb = db.register_table("Beta", t.clone());
        let va = db.register_table("alpha", t);
        let v2 = db.append_row("Beta", vec![Value::Float(2.0)]).unwrap();
        let stats = db.stats();
        assert_eq!(
            stats
                .tables
                .iter()
                .map(|t| (t.name.as_str(), t.rows, t.version))
                .collect::<Vec<_>>(),
            vec![("Beta", 2, v2), ("alpha", 1, va)]
        );
        assert!(vb < va && va < v2, "versions are globally monotone");
        assert_eq!(stats.cache.hits + stats.cache.misses, 0);
    }
}
