//! The `PackageDb` session: catalog + partition cache + planner.

use std::sync::Arc;
use std::time::{Duration, Instant};

use paq_core::{Direct, EngineError, Evaluator, SketchRefine, SketchRefineOptions};
use paq_exec::ThreadPool;
use paq_lang::{parse_paql, validate, PackageQuery};
use paq_partition::partitioning::GID_COLUMN;
use paq_partition::{PartitionConfig, Partitioner, Partitioning};
use paq_relational::{Table, Value};
use paq_solver::{SolverConfig, Telemetry};

use crate::cache::{CacheStats, PartitionCache, PartitionSpec};
use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::execution::{CacheOutcome, Execution, RouteReason, Strategy, Timings};

/// Planner routing control for
/// [`PackageDb::execute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Route {
    /// Let the planner pick (the behavior of [`PackageDb::execute`]).
    #[default]
    Auto,
    /// Always evaluate with DIRECT (exact; used by benchmarks and
    /// ablations).
    ForceDirect,
    /// Always evaluate with SKETCHREFINE (approximate; uses the
    /// partition cache, building a partitioning if none is usable).
    ForceSketchRefine,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Route to DIRECT when the input table has at most this many rows
    /// (one exact ILP of that size is cheap; the paper's DIRECT curves
    /// stay flat until the solver hits resource limits).
    pub direct_threshold: usize,
    /// Lazily built partitionings target this many groups
    /// (τ = rows / `default_groups`), mirroring
    /// [`SketchRefine`]'s convenience default.
    pub default_groups: usize,
    /// Black-box solver budgets shared by both strategies.
    pub solver: SolverConfig,
    /// SKETCHREFINE tuning (hybrid sketch, fallback ladder, budgets).
    pub sketchrefine: SketchRefineOptions,
    /// When the SKETCHREFINE route reports *possibly false*
    /// infeasibility (§4.4), automatically re-run with DIRECT — the
    /// unpartitioned problem cannot be falsely infeasible. Applies to
    /// [`Route::Auto`] only; forced routes report the raw verdict.
    pub fallback_to_direct: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            direct_threshold: 2_000,
            default_groups: 10,
            solver: SolverConfig::default(),
            sketchrefine: SketchRefineOptions::default(),
            fallback_to_direct: true,
        }
    }
}

/// A package-query session: named tables, cached offline partitionings,
/// and a planner that routes every query to DIRECT or SKETCHREFINE.
///
/// This is the system front door the paper describes (PackageBuilder on
/// top of a DBMS): register tables once, then throw PaQL at it.
///
/// ```
/// use paq_db::PackageDb;
/// use paq_relational::{DataType, Schema, Table, Value};
///
/// let mut table = Table::new(Schema::from_pairs(&[
///     ("name", DataType::Str),
///     ("gluten", DataType::Str),
///     ("kcal", DataType::Float),
///     ("saturated_fat", DataType::Float),
/// ]));
/// for (name, gluten, kcal, fat) in [
///     ("oats", "free", 0.8, 1.0),
///     ("bread", "full", 0.9, 2.0),
///     ("salad", "free", 0.5, 0.2),
///     ("steak", "free", 1.1, 5.0),
///     ("rice", "free", 0.7, 0.4),
/// ] {
///     table.push_row(vec![name.into(), gluten.into(), kcal.into(), fat.into()]).unwrap();
/// }
///
/// let mut db = PackageDb::new();
/// db.register_table("Recipes", table);
///
/// // `FROM Recipes R` now resolves by name (case-insensitively).
/// let exec = db
///     .execute(
///         "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
///          WHERE R.gluten = 'free' \
///          SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 \
///          MINIMIZE SUM(P.saturated_fat)",
///     )
///     .unwrap();
/// assert_eq!(exec.package.cardinality(), 3);
/// println!("{}", exec.explain()); // why DIRECT/SKETCHREFINE was chosen
/// ```
#[derive(Debug, Default)]
pub struct PackageDb {
    catalog: Catalog,
    cache: PartitionCache,
    config: DbConfig,
    telemetry: Option<Arc<Telemetry>>,
    /// Session worker pool, spawned lazily when
    /// `config.sketchrefine.threads > 1` and shared by wave-based
    /// REFINE and the offline partitioning builds.
    pool: Option<Arc<ThreadPool>>,
}

impl PackageDb {
    /// A session with default configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// A session with explicit configuration.
    pub fn with_config(config: DbConfig) -> Self {
        PackageDb {
            catalog: Catalog::default(),
            cache: PartitionCache::default(),
            config,
            telemetry: None,
            pool: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Mutable access to the configuration (solver budgets, routing
    /// thresholds, REFINE threads, …). Takes effect on the next
    /// execution; the worker pool is re-sized lazily if
    /// `sketchrefine.threads` changed.
    pub fn config_mut(&mut self) -> &mut DbConfig {
        &mut self.config
    }

    /// The session worker pool matching the configured thread count
    /// (`None` when single-threaded). Re-spawns on a size change.
    fn worker_pool(pool: &mut Option<Arc<ThreadPool>>, threads: usize) -> Option<Arc<ThreadPool>> {
        if threads <= 1 {
            *pool = None;
            return None;
        }
        if pool.as_ref().map(|p| p.threads()) != Some(threads) {
            *pool = Some(Arc::new(ThreadPool::new(threads)));
        }
        pool.clone()
    }

    /// Attach a shared telemetry sink; every solver call made on behalf
    /// of this session reports into it.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Register (or replace) a table under `name`; returns the catalog
    /// version. Replacing invalidates cached partitionings of the old
    /// contents.
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) -> u64 {
        let name = name.into();
        let key = Catalog::key(&name);
        let version = self.catalog.register(name, table);
        self.cache.invalidate_stale(&key, version);
        version
    }

    /// Remove a table and every cached partitioning of it.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.catalog.drop_table(name)?;
        self.cache.invalidate_table(&Catalog::key(name));
        Ok(())
    }

    /// Resolve a registered table (case-insensitive).
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        Ok(self.catalog.resolve(name)?.table())
    }

    /// The current version counter of a registered table.
    pub fn table_version(&self, name: &str) -> DbResult<u64> {
        Ok(self.catalog.resolve(name)?.version())
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.names()
    }

    /// Mutate a table in place. On success, bumps the version counter
    /// and invalidates cached partitionings built over the old
    /// contents; a failed mutation (which must leave the table
    /// unchanged, see [`Catalog::mutate`]) keeps version and cache
    /// intact.
    pub fn mutate_table<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Table) -> paq_relational::RelResult<R>,
    ) -> DbResult<R> {
        let (out, version) = self.catalog.mutate(name, f)?;
        self.cache.invalidate_stale(&Catalog::key(name), version);
        Ok(out)
    }

    /// Append one row to a registered table (version-bumping shorthand
    /// for [`PackageDb::mutate_table`]).
    pub fn append_row(&mut self, name: &str, row: Vec<Value>) -> DbResult<()> {
        self.mutate_table(name, |t| t.push_row(row))
    }

    // ------------------------------------------------------------------
    // Partition cache
    // ------------------------------------------------------------------

    /// Install an externally built partitioning (radius-limited,
    /// dynamically extracted from a quad-tree hierarchy, …) for the
    /// table's *current* contents. Subsequent SKETCHREFINE routes reuse
    /// it as a cache hit until the table mutates.
    pub fn install_partitioning(&mut self, name: &str, partitioning: Partitioning) -> DbResult<()> {
        let entry = self.catalog.resolve(name)?;
        let rows = entry.table().num_rows();
        if !partitioning.is_disjoint_cover(rows) {
            return Err(DbError::InvalidPartitioning {
                relation: entry.name().to_owned(),
                detail: format!(
                    "groups must disjointly cover all {rows} rows of the current table"
                ),
            });
        }
        let version = entry.version();
        let attributes = partitioning.attributes.clone();
        let id = self.cache.next_external_id();
        self.cache.insert(
            Catalog::key(name),
            version,
            attributes,
            PartitionSpec::External { id },
            Arc::new(partitioning),
        );
        Ok(())
    }

    /// Observable partition-cache counters (hits, misses,
    /// invalidations, live entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Parse and execute a PaQL query, letting the planner route it.
    pub fn execute(&mut self, paql: &str) -> DbResult<Execution> {
        let query = parse_paql(paql)?;
        self.execute_with(&query, Route::Auto)
    }

    /// Execute an already-built query (from [`paq_lang::Paql`] or the
    /// parser), letting the planner route it.
    pub fn execute_query(&mut self, query: impl Into<PackageQuery>) -> DbResult<Execution> {
        self.execute_with(&query.into(), Route::Auto)
    }

    /// Execute with explicit routing control.
    pub fn execute_with(&mut self, query: &PackageQuery, route: Route) -> DbResult<Execution> {
        self.execute_inner(query, route, None)
    }

    /// Execute with SKETCHREFINE over a caller-supplied offline
    /// partitioning of the table's current contents, bypassing the
    /// partition cache (the cache is neither consulted nor populated).
    /// This is the benchmark/ablation entry point: the same session —
    /// catalog, solver budgets, worker pool — evaluates many queries
    /// against many partitionings without cross-talk between them.
    pub fn execute_with_partitioning(
        &mut self,
        query: &PackageQuery,
        partitioning: Arc<Partitioning>,
    ) -> DbResult<Execution> {
        self.execute_inner(query, Route::ForceSketchRefine, Some(partitioning))
    }

    fn execute_inner(
        &mut self,
        query: &PackageQuery,
        route: Route,
        provided: Option<Arc<Partitioning>>,
    ) -> DbResult<Execution> {
        let total_start = Instant::now();

        // --- plan: resolve, check schema, route -----------------------
        let entry = self.catalog.resolve(&query.relation)?;
        let relation = entry.name().to_owned();
        let key = Catalog::key(&relation);
        let table_version = entry.version();
        let rows = entry.table().num_rows();

        let missing = missing_attributes(query, entry.table());
        if !missing.is_empty() {
            return Err(DbError::SchemaMismatch { relation, missing });
        }
        validate(query, entry.table().schema())?;

        let partition_attrs = partition_attributes(query, entry.table());
        let (mut strategy, reason) = match route {
            Route::ForceDirect => (Strategy::Direct, RouteReason::Forced),
            Route::ForceSketchRefine => (Strategy::SketchRefine, RouteReason::Forced),
            Route::Auto => {
                if query.max_multiplicity().is_none() {
                    (Strategy::Direct, RouteReason::UnboundedRepeat)
                } else if rows <= self.config.direct_threshold {
                    (
                        Strategy::Direct,
                        RouteReason::SmallTable {
                            rows,
                            threshold: self.config.direct_threshold,
                        },
                    )
                } else if partition_attrs.is_empty() {
                    (Strategy::Direct, RouteReason::NoPartitionAttributes)
                } else {
                    (
                        Strategy::SketchRefine,
                        RouteReason::LargeTable {
                            rows,
                            threshold: self.config.direct_threshold,
                        },
                    )
                }
            }
        };
        let plan = total_start.elapsed();

        // --- evaluate -------------------------------------------------
        let mut cache = CacheOutcome::NotUsed;
        let mut partitioning_time = Duration::ZERO;
        let mut report = None;
        let mut fell_back_to_direct = false;

        // The catalog resolved the relation and validated the query
        // above; skip the evaluators' catalog-less binding check.
        let _scope = paq_core::catalog_scope();

        let evaluate_start = Instant::now();
        let package = match strategy {
            Strategy::Direct => self.direct_evaluator().evaluate(query, entry.table())?,
            Strategy::SketchRefine => {
                // One pool serves the offline build and wave-based
                // REFINE alike (lazily spawned, kept across queries).
                let pool = Self::worker_pool(&mut self.pool, self.config.sketchrefine.threads);
                let (partitioning, outcome) = if let Some(p) = provided {
                    if !p.is_disjoint_cover(rows) {
                        return Err(DbError::InvalidPartitioning {
                            relation,
                            detail: format!(
                                "groups must disjointly cover all {rows} rows of the current table"
                            ),
                        });
                    }
                    let groups = p.num_groups();
                    let attributes = p.attributes.clone();
                    (p, CacheOutcome::Provided { groups, attributes })
                } else if partition_attrs.is_empty() {
                    return Err(DbError::Engine(EngineError::Unsupported(
                        "SKETCHREFINE needs at least one numeric attribute to partition on".into(),
                    )));
                } else {
                    match self.cache.lookup(&key, table_version, &partition_attrs) {
                        Some((p, attributes, _)) => {
                            let groups = p.num_groups();
                            (p, CacheOutcome::Hit { groups, attributes })
                        }
                        None => {
                            self.cache.record_miss();
                            let tau = (rows / self.config.default_groups.max(1)).max(2);
                            let part_start = Instant::now();
                            let partitioner = Partitioner::new(PartitionConfig::by_size(
                                partition_attrs.clone(),
                                tau,
                            ));
                            // The offline build shares the REFINE pool:
                            // leaf statistics are embarrassingly
                            // parallel and the result is identical.
                            let built = match &pool {
                                Some(pool) => {
                                    partitioner.partition_with_pool(entry.table(), pool)?
                                }
                                None => partitioner.partition(entry.table())?,
                            };
                            partitioning_time = part_start.elapsed();
                            let built = Arc::new(built);
                            self.cache.insert(
                                key.clone(),
                                table_version,
                                partition_attrs.clone(),
                                PartitionSpec::BySize { tau },
                                Arc::clone(&built),
                            );
                            let groups = built.num_groups();
                            (
                                built,
                                CacheOutcome::Miss {
                                    groups,
                                    attributes: partition_attrs,
                                },
                            )
                        }
                    }
                };
                cache = outcome;

                match self.sketchrefine_evaluator(pool).evaluate_with_report(
                    query,
                    entry.table(),
                    &partitioning,
                ) {
                    Ok((pkg, r)) => {
                        report = Some(r);
                        pkg
                    }
                    Err(EngineError::Infeasible {
                        possibly_false: true,
                    }) if route == Route::Auto && self.config.fallback_to_direct => {
                        // §4.4: the unpartitioned problem cannot be
                        // falsely infeasible — settle the verdict with
                        // DIRECT.
                        fell_back_to_direct = true;
                        strategy = Strategy::Direct;
                        self.direct_evaluator().evaluate(query, entry.table())?
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        let evaluate = evaluate_start.elapsed() - partitioning_time;

        Ok(Execution {
            package,
            relation,
            rows,
            table_version,
            strategy,
            reason,
            cache,
            report,
            fell_back_to_direct,
            timings: Timings {
                plan,
                partitioning: partitioning_time,
                evaluate,
                total: total_start.elapsed(),
            },
        })
    }

    fn direct_evaluator(&self) -> Direct {
        let d = Direct::new(self.config.solver.clone());
        match &self.telemetry {
            Some(t) => d.with_telemetry(Arc::clone(t)),
            None => d,
        }
    }

    fn sketchrefine_evaluator(&self, pool: Option<Arc<ThreadPool>>) -> SketchRefine {
        let sr = SketchRefine::new(self.config.solver.clone())
            .with_options(self.config.sketchrefine.clone());
        let sr = match pool {
            Some(pool) => sr.with_pool(pool),
            None => sr,
        };
        match &self.telemetry {
            Some(t) => sr.with_telemetry(Arc::clone(t)),
            None => sr,
        }
    }
}

/// Query-referenced attributes (global predicates, objective, and WHERE
/// columns) missing from the table's schema.
fn missing_attributes(query: &PackageQuery, table: &Table) -> Vec<String> {
    let mut referenced = query.query_attributes();
    if let Some(w) = &query.where_clause {
        referenced.extend(w.referenced_columns());
    }
    referenced.sort();
    referenced.dedup();
    referenced
        .into_iter()
        .filter(|a| !table.schema().contains(a))
        .collect()
}

/// Numeric attributes to partition on: the query's attributes when
/// usable, otherwise every numeric column (minus the reserved `gid`).
fn partition_attributes(query: &PackageQuery, table: &Table) -> Vec<String> {
    let numeric = |a: &String| {
        table
            .schema()
            .column(a)
            .map(|def| def.ty.is_numeric())
            .unwrap_or(false)
    };
    let mut attrs: Vec<String> = query
        .query_attributes()
        .into_iter()
        .filter(|a| a != GID_COLUMN && numeric(a))
        .collect();
    if attrs.is_empty() {
        attrs = table
            .schema()
            .numeric_names()
            .into_iter()
            .filter(|a| *a != GID_COLUMN)
            .map(str::to_owned)
            .collect();
    }
    attrs
}
