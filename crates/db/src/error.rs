//! Session-level error type.

use std::fmt;

use paq_core::EngineError;
use paq_lang::PaqlError;
use paq_relational::RelError;

/// Errors from the [`PackageDb`](crate::PackageDb) session layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The query's `FROM` relation is not registered in the catalog.
    UnknownTable {
        /// The relation name the query asked for.
        name: String,
        /// Names currently registered (for the error message).
        known: Vec<String>,
    },
    /// The resolved table does not provide every attribute the query
    /// references.
    SchemaMismatch {
        /// The resolved relation name.
        relation: String,
        /// Referenced attributes missing from the table's schema.
        missing: Vec<String>,
    },
    /// An externally installed partitioning does not cover the table.
    InvalidPartitioning {
        /// The relation the partitioning was installed for.
        relation: String,
        /// What is wrong with it.
        detail: String,
    },
    /// PaQL parse/validation/translation error.
    Language(PaqlError),
    /// Evaluation error (infeasibility, solver resource exhaustion, …).
    Engine(EngineError),
    /// Relational substrate error.
    Relational(RelError),
    /// Durable-storage failure (WAL append, snapshot write, recovery).
    /// Rendered to a string so the error stays `Clone + PartialEq`
    /// like every other variant.
    Storage {
        /// What failed, including the underlying I/O detail.
        detail: String,
    },
}

impl DbError {
    /// `true` when the error is an (possibly false) infeasibility
    /// verdict — an *answer*, not a failure.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, DbError::Engine(e) if e.is_infeasible())
    }

    /// `true` when evaluation failed rather than answered (mirrors
    /// [`EngineError::is_failure`]).
    pub fn is_failure(&self) -> bool {
        match self {
            DbError::Engine(e) => e.is_failure(),
            DbError::Language(_) | DbError::Relational(_) => true,
            DbError::UnknownTable { .. }
            | DbError::SchemaMismatch { .. }
            | DbError::InvalidPartitioning { .. }
            | DbError::Storage { .. } => true,
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable { name, known } => {
                write!(f, "unknown table '{name}'")?;
                if known.is_empty() {
                    write!(f, " (no tables registered)")
                } else {
                    write!(f, " (registered: {})", known.join(", "))
                }
            }
            DbError::SchemaMismatch { relation, missing } => write!(
                f,
                "table '{relation}' is missing query attribute(s): {}",
                missing.join(", ")
            ),
            DbError::InvalidPartitioning { relation, detail } => {
                write!(f, "invalid partitioning for table '{relation}': {detail}")
            }
            DbError::Language(e) => write!(f, "{e}"),
            DbError::Engine(e) => write!(f, "{e}"),
            DbError::Relational(e) => write!(f, "{e}"),
            DbError::Storage { detail } => write!(f, "storage error: {detail}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<PaqlError> for DbError {
    fn from(e: PaqlError) -> Self {
        DbError::Language(e)
    }
}

impl From<EngineError> for DbError {
    fn from(e: EngineError) -> Self {
        DbError::Engine(e)
    }
}

impl From<RelError> for DbError {
    fn from(e: RelError) -> Self {
        DbError::Relational(e)
    }
}

/// Result alias for the session layer.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_known_tables() {
        let e = DbError::UnknownTable {
            name: "Recipes".into(),
            known: vec!["Galaxy".into(), "Tpch".into()],
        };
        let s = e.to_string();
        assert!(s.contains("Recipes") && s.contains("Galaxy") && s.contains("Tpch"));
        let none = DbError::UnknownTable {
            name: "X".into(),
            known: vec![],
        };
        assert!(none.to_string().contains("no tables registered"));
    }

    #[test]
    fn classification() {
        let inf: DbError = EngineError::infeasible().into();
        assert!(inf.is_infeasible());
        assert!(!inf.is_failure());
        let unk = DbError::UnknownTable {
            name: "X".into(),
            known: vec![],
        };
        assert!(!unk.is_infeasible());
        assert!(unk.is_failure());
    }
}
