//! The table catalog: named, versioned relations.
//!
//! SQL identifiers are case-insensitive, so `FROM Recipes R` resolves a
//! table registered as `recipes`. Every mutation (re-registration or
//! in-place edit) bumps the entry's **version counter**, which the
//! partition cache uses to invalidate partitionings built over stale
//! contents.

use std::collections::BTreeMap;

use paq_relational::Table;

use crate::error::{DbError, DbResult};

/// One registered relation.
#[derive(Debug, Clone)]
pub struct TableEntry {
    name: String,
    table: Table,
    version: u64,
}

impl TableEntry {
    /// The name the table was registered under (original casing).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table contents.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Monotone version counter; bumped on every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Name → table map with case-insensitive resolution.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Keyed by lower-cased name; entries keep the original casing.
    tables: BTreeMap<String, TableEntry>,
}

impl Catalog {
    /// Canonical catalog key for a relation name.
    pub fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register (or replace) a table, returning its new version.
    /// Replacement bumps the previous version rather than restarting at
    /// 1, so cached artifacts keyed by older versions stay invalid.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> u64 {
        let name = name.into();
        let key = Self::key(&name);
        let version = self.tables.get(&key).map_or(1, |e| e.version + 1);
        self.tables.insert(
            key,
            TableEntry {
                name,
                table,
                version,
            },
        );
        version
    }

    /// Remove a table; `Err` if it was never registered.
    pub fn drop_table(&mut self, name: &str) -> DbResult<TableEntry> {
        self.tables
            .remove(&Self::key(name))
            .ok_or_else(|| self.unknown(name))
    }

    /// Resolve a relation name (case-insensitive).
    pub fn resolve(&self, name: &str) -> DbResult<&TableEntry> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| self.unknown(name))
    }

    /// Mutate a table in place through `f`, bumping its version when
    /// `f` succeeds. A failed mutation that left the table untouched
    /// (as atomic operations like [`Table::push_row`] do — they
    /// validate before mutating) keeps the version, so artifacts
    /// cached over the unchanged contents stay valid; if `f` errors
    /// *after* observably changing the table (row count or schema),
    /// the version is bumped anyway so stale caches cannot be served.
    ///
    /// Contract: an `f` that errors after editing cells in place
    /// (without changing row count or schema) must undo its edits.
    pub fn mutate<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Table) -> paq_relational::RelResult<R>,
    ) -> DbResult<(R, u64)> {
        let key = Self::key(name);
        match self.tables.get_mut(&key) {
            Some(entry) => {
                let rows_before = entry.table.num_rows();
                let arity_before = entry.table.schema().arity();
                match f(&mut entry.table) {
                    Ok(out) => {
                        entry.version += 1;
                        Ok((out, entry.version))
                    }
                    Err(e) => {
                        if entry.table.num_rows() != rows_before
                            || entry.table.schema().arity() != arity_before
                        {
                            entry.version += 1;
                        }
                        Err(e.into())
                    }
                }
            }
            None => Err(self.unknown(name)),
        }
    }

    /// Registered table names (original casing, sorted by key).
    pub fn names(&self) -> Vec<String> {
        self.tables.values().map(|e| e.name.clone()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    fn unknown(&self, name: &str) -> DbError {
        DbError::UnknownTable {
            name: name.to_owned(),
            known: self.names(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::{DataType, Schema, Value};

    fn table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t
    }

    #[test]
    fn resolution_is_case_insensitive() {
        let mut c = Catalog::default();
        c.register("Recipes", table());
        assert_eq!(c.resolve("recipes").unwrap().name(), "Recipes");
        assert_eq!(c.resolve("RECIPES").unwrap().version(), 1);
        assert!(matches!(
            c.resolve("Galaxy"),
            Err(DbError::UnknownTable { ref name, ref known })
                if name == "Galaxy" && known == &["Recipes".to_string()]
        ));
    }

    #[test]
    fn versions_bump_on_mutation_and_replacement() {
        let mut c = Catalog::default();
        assert_eq!(c.register("T", table()), 1);
        let ((), v) = c
            .mutate("t", |t| t.push_row(vec![Value::Float(2.0)]))
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(c.resolve("T").unwrap().table().num_rows(), 2);
        // Replacement continues the counter.
        assert_eq!(c.register("T", table()), 3);
    }

    #[test]
    fn failed_mutation_does_not_bump_the_version() {
        let mut c = Catalog::default();
        c.register("T", table());
        // Wrong arity: push_row rejects atomically.
        assert!(c.mutate("T", |t| t.push_row(vec![])).is_err());
        let entry = c.resolve("T").unwrap();
        assert_eq!(entry.version(), 1, "no mutation happened");
        assert_eq!(entry.table().num_rows(), 1);
    }

    #[test]
    fn partial_mutation_before_error_still_bumps_the_version() {
        let mut c = Catalog::default();
        c.register("T", table());
        // First push lands, second fails: the table changed, so caches
        // over the old contents must go stale.
        assert!(c
            .mutate("T", |t| {
                t.push_row(vec![Value::Float(2.0)])?;
                t.push_row(vec![]) // arity error
            })
            .is_err());
        let entry = c.resolve("T").unwrap();
        assert_eq!(entry.table().num_rows(), 2, "partial mutation persisted");
        assert_eq!(
            entry.version(),
            2,
            "observable change must bump the version"
        );
    }

    #[test]
    fn drop_removes_entry() {
        let mut c = Catalog::default();
        c.register("T", table());
        assert!(c.drop_table("t").is_ok());
        assert!(c.is_empty());
        assert!(c.drop_table("t").is_err());
    }
}
