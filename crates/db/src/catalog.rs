//! The table catalog: named, versioned relations.
//!
//! SQL identifiers are case-insensitive, so `FROM Recipes R` resolves a
//! table registered as `recipes`. Every mutation (re-registration or
//! in-place edit) stamps the entry with a fresh **version** drawn from
//! one counter that is monotone across the *whole catalog* — never per
//! entry — so a version number is never reused, not even by dropping a
//! table and re-registering another under the same name. The partition
//! cache keys artifacts by version; global monotonicity is what makes a
//! stale partitioning unservable *by construction*: no future table
//! state can ever collide with a version an old artifact was built for.
//!
//! Tables are held as [`Arc<Table>`] so a concurrent reader (an
//! execution planning against a snapshot) can keep the contents alive
//! without holding any catalog lock; in-place mutation is copy-on-write
//! ([`Arc::make_mut`]) and only pays for a clone while snapshots of the
//! previous contents are still live.

use std::collections::BTreeMap;
use std::sync::Arc;

use paq_relational::Table;

use crate::error::{DbError, DbResult};

/// One registered relation.
#[derive(Debug, Clone)]
pub struct TableEntry {
    name: String,
    table: Arc<Table>,
    version: u64,
}

impl TableEntry {
    /// The name the table was registered under (original casing).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table contents.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// A shared snapshot of the contents: stays valid (and unchanged)
    /// however the catalog mutates afterwards.
    pub fn snapshot(&self) -> Arc<Table> {
        Arc::clone(&self.table)
    }

    /// Catalog-wide monotone version stamp; a fresh one is drawn on
    /// every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Name → table map with case-insensitive resolution.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Keyed by lower-cased name; entries keep the original casing.
    tables: BTreeMap<String, TableEntry>,
    /// Last version handed out. Shared by every entry and never reset:
    /// see the module docs for why drop + re-register must not be able
    /// to reproduce an old version number.
    last_version: u64,
}

impl Catalog {
    /// Canonical catalog key for a relation name.
    pub fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    fn next_version(&mut self) -> u64 {
        self.last_version += 1;
        self.last_version
    }

    /// Register (or replace) a table, returning its new version.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> u64 {
        let name = name.into();
        let key = Self::key(&name);
        let version = self.next_version();
        self.tables.insert(
            key,
            TableEntry {
                name,
                table: Arc::new(table),
                version,
            },
        );
        version
    }

    /// Remove a table; `Err` if it was never registered. A successful
    /// drop draws a fresh version (returned alongside the removed
    /// entry) even though no entry carries it: a drop is a catalog
    /// mutation like any other, and a durability layer logging
    /// mutations by version needs a distinct stamp for it.
    pub fn drop_table(&mut self, name: &str) -> DbResult<(TableEntry, u64)> {
        let entry = self
            .tables
            .remove(&Self::key(name))
            .ok_or_else(|| self.unknown(name))?;
        let version = self.next_version();
        Ok((entry, version))
    }

    /// Re-insert a table at an explicit `version` — the recovery seam.
    /// Unlike [`Catalog::register`], no fresh version is drawn: the
    /// entry keeps the stamp it had when it was persisted, and the
    /// catalog-wide counter is floored at it so future mutations stay
    /// globally monotone over everything ever logged.
    pub fn restore(&mut self, name: impl Into<String>, table: Arc<Table>, version: u64) {
        let name = name.into();
        let key = Self::key(&name);
        self.tables.insert(
            key,
            TableEntry {
                name,
                table,
                version,
            },
        );
        self.last_version = self.last_version.max(version);
    }

    /// Floor the version counter at `version` (recovery: the persisted
    /// counter may be ahead of every surviving entry, e.g. after drops).
    pub fn ensure_version_floor(&mut self, version: u64) {
        self.last_version = self.last_version.max(version);
    }

    /// Last version handed out (the durability layer's snapshot LSN).
    pub fn last_version(&self) -> u64 {
        self.last_version
    }

    /// Resolve a relation name (case-insensitive).
    pub fn resolve(&self, name: &str) -> DbResult<&TableEntry> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| self.unknown(name))
    }

    /// The current version of the entry under an already-canonical
    /// `key`, or `None` when the table is not registered. Used to
    /// re-check that an artifact built against a snapshot is still
    /// current before publishing it.
    pub fn version_of(&self, key: &str) -> Option<u64> {
        self.tables.get(key).map(|e| e.version)
    }

    /// Mutate a table in place through `f`, stamping a fresh version
    /// when `f` succeeds. A failed mutation that left the table
    /// untouched (as atomic operations like [`Table::push_row`] do —
    /// they validate before mutating) keeps the version, so artifacts
    /// cached over the unchanged contents stay valid; if `f` errors
    /// *after* observably changing the table (row count or schema),
    /// the version is bumped anyway so stale caches cannot be served.
    ///
    /// Contract: an `f` that errors after editing cells in place
    /// (without changing row count or schema) must undo its edits.
    pub fn mutate<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Table) -> paq_relational::RelResult<R>,
    ) -> DbResult<(R, u64)> {
        let key = Self::key(name);
        if !self.tables.contains_key(&key) {
            return Err(self.unknown(name));
        }
        // Borrow the entry (a `tables` field borrow) and bump the
        // version counter (a disjoint field) directly — `next_version`
        // would borrow all of `self` and conflict.
        let entry = self.tables.get_mut(&key).expect("checked above");
        let rows_before = entry.table.num_rows();
        let arity_before = entry.table.schema().arity();
        // Copy-on-write: snapshots held by in-flight executions keep
        // the old contents; the catalog entry gets the edited copy.
        let result = f(Arc::make_mut(&mut entry.table));
        let changed =
            entry.table.num_rows() != rows_before || entry.table.schema().arity() != arity_before;
        match result {
            Ok(out) => {
                self.last_version += 1;
                entry.version = self.last_version;
                Ok((out, entry.version))
            }
            Err(e) => {
                if changed {
                    self.last_version += 1;
                    entry.version = self.last_version;
                }
                Err(e.into())
            }
        }
    }

    /// Registered table names (original casing, sorted by key).
    pub fn names(&self) -> Vec<String> {
        self.tables.values().map(|e| e.name.clone()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    fn unknown(&self, name: &str) -> DbError {
        DbError::UnknownTable {
            name: name.to_owned(),
            known: self.names(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::{DataType, Schema, Value};

    fn table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t
    }

    #[test]
    fn resolution_is_case_insensitive() {
        let mut c = Catalog::default();
        c.register("Recipes", table());
        assert_eq!(c.resolve("recipes").unwrap().name(), "Recipes");
        assert_eq!(c.resolve("RECIPES").unwrap().version(), 1);
        assert!(matches!(
            c.resolve("Galaxy"),
            Err(DbError::UnknownTable { ref name, ref known })
                if name == "Galaxy" && known == &["Recipes".to_string()]
        ));
    }

    #[test]
    fn versions_bump_on_mutation_and_replacement() {
        let mut c = Catalog::default();
        assert_eq!(c.register("T", table()), 1);
        let ((), v) = c
            .mutate("t", |t| t.push_row(vec![Value::Float(2.0)]))
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(c.resolve("T").unwrap().table().num_rows(), 2);
        // Replacement continues the counter.
        assert_eq!(c.register("T", table()), 3);
    }

    #[test]
    fn versions_are_monotone_across_drop_and_reregister() {
        let mut c = Catalog::default();
        let v1 = c.register("T", table());
        c.drop_table("T").unwrap();
        let v2 = c.register("T", table());
        assert!(
            v2 > v1,
            "drop + re-register must not reuse version {v1} (got {v2}): \
             a cached artifact keyed by {v1} would resurrect"
        );
        // ... and the counter is catalog-wide, not per entry.
        let vu = c.register("U", table());
        assert!(vu > v2);
    }

    #[test]
    fn failed_mutation_does_not_bump_the_version() {
        let mut c = Catalog::default();
        c.register("T", table());
        // Wrong arity: push_row rejects atomically.
        assert!(c.mutate("T", |t| t.push_row(vec![])).is_err());
        let entry = c.resolve("T").unwrap();
        assert_eq!(entry.version(), 1, "no mutation happened");
        assert_eq!(entry.table().num_rows(), 1);
    }

    #[test]
    fn partial_mutation_before_error_still_bumps_the_version() {
        let mut c = Catalog::default();
        c.register("T", table());
        // First push lands, second fails: the table changed, so caches
        // over the old contents must go stale.
        assert!(c
            .mutate("T", |t| {
                t.push_row(vec![Value::Float(2.0)])?;
                t.push_row(vec![]) // arity error
            })
            .is_err());
        let entry = c.resolve("T").unwrap();
        assert_eq!(entry.table().num_rows(), 2, "partial mutation persisted");
        assert_eq!(
            entry.version(),
            2,
            "observable change must bump the version"
        );
    }

    #[test]
    fn snapshots_are_immune_to_later_mutation() {
        let mut c = Catalog::default();
        c.register("T", table());
        let snap = c.resolve("T").unwrap().snapshot();
        c.mutate("T", |t| t.push_row(vec![Value::Float(9.0)]))
            .unwrap();
        assert_eq!(snap.num_rows(), 1, "snapshot kept the old contents");
        assert_eq!(c.resolve("T").unwrap().table().num_rows(), 2);
    }

    #[test]
    fn drop_removes_entry() {
        let mut c = Catalog::default();
        c.register("T", table());
        assert!(c.drop_table("t").is_ok());
        assert!(c.is_empty());
        assert!(c.drop_table("t").is_err());
    }
}
