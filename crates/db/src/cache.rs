//! The partition cache.
//!
//! SKETCHREFINE's partitionings are an *offline* artifact (§4.1 of the
//! paper: "One-time cost"): built once, reused by every query whose
//! attributes they cover. The cache keys each [`Partitioning`] by
//! (table, table **version**, attribute set, build spec); a table
//! mutation bumps the version, so stale partitionings can never be
//! served — they are evicted and counted as invalidations the next time
//! the table is touched.

use std::sync::Arc;

use paq_partition::Partitioning;

/// How a cached partitioning was produced (part of the cache key: the
/// same attributes at a different granularity are a different artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Built by the planner: quad tree with size threshold τ.
    BySize {
        /// The τ used.
        tau: usize,
    },
    /// Installed by the caller (e.g. a radius-limited or dynamically
    /// extracted partitioning); the id keeps distinct installations
    /// distinct.
    External {
        /// Installation sequence number.
        id: u64,
    },
}

#[derive(Debug)]
struct CacheEntry {
    table_key: String,
    version: u64,
    attributes: Vec<String>,
    spec: PartitionSpec,
    partitioning: Arc<Partitioning>,
    last_used: u64,
}

/// Observable cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required building a partitioning.
    pub misses: u64,
    /// Entries evicted because their table version went stale.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

/// Cache of offline partitionings keyed by (table, version, attributes,
/// spec). See the module docs.
#[derive(Debug, Default)]
pub struct PartitionCache {
    entries: Vec<CacheEntry>,
    tick: u64,
    next_external_id: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PartitionCache {
    /// Drop entries for `table_key` whose version is not
    /// `current_version`, counting them as invalidations.
    pub fn invalidate_stale(&mut self, table_key: &str, current_version: u64) {
        let before = self.entries.len();
        self.entries
            .retain(|e| e.table_key != table_key || e.version == current_version);
        self.invalidations += (before - self.entries.len()) as u64;
    }

    /// Drop every entry for `table_key` (table dropped from the
    /// catalog).
    pub fn invalidate_table(&mut self, table_key: &str) {
        let before = self.entries.len();
        self.entries.retain(|e| e.table_key != table_key);
        self.invalidations += (before - self.entries.len()) as u64;
    }

    /// Find a usable partitioning for the table at `version`.
    ///
    /// Preference order: entries whose attribute set covers
    /// `query_attributes` (representatives then carry exact centroids
    /// for every constrained attribute), most recently used first; then
    /// any current entry (usable per §5.2.3 — missing attributes are
    /// materialized as group means), most recently used first.
    pub fn lookup(
        &mut self,
        table_key: &str,
        version: u64,
        query_attributes: &[String],
    ) -> Option<(Arc<Partitioning>, Vec<String>, PartitionSpec)> {
        self.invalidate_stale(table_key, version);
        let covers = |e: &CacheEntry| query_attributes.iter().all(|a| e.attributes.contains(a));
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.table_key == table_key && e.version == version)
            .max_by_key(|(_, e)| (covers(e), e.last_used))
            .map(|(i, _)| i)?;
        self.tick += 1;
        self.hits += 1;
        let entry = &mut self.entries[best];
        entry.last_used = self.tick;
        Some((
            Arc::clone(&entry.partitioning),
            entry.attributes.clone(),
            entry.spec.clone(),
        ))
    }

    /// Record a lookup miss (the caller is about to build).
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Insert a partitioning built or installed for the table at
    /// `version`. Replaces any previous entry with the same key.
    pub fn insert(
        &mut self,
        table_key: impl Into<String>,
        version: u64,
        attributes: Vec<String>,
        spec: PartitionSpec,
        partitioning: Arc<Partitioning>,
    ) {
        let table_key = table_key.into();
        self.tick += 1;
        self.entries.retain(|e| {
            e.table_key != table_key
                || e.version != version
                || e.attributes != attributes
                || e.spec != spec
        });
        self.entries.push(CacheEntry {
            table_key,
            version,
            attributes,
            spec,
            partitioning,
            last_used: self.tick,
        });
    }

    /// Allocate an id for an externally installed partitioning.
    pub fn next_external_id(&mut self) -> u64 {
        self.next_external_id += 1;
        self.next_external_id
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn partitioning(attrs: &[&str]) -> Arc<Partitioning> {
        Arc::new(Partitioning {
            attributes: attrs.iter().map(|s| s.to_string()).collect(),
            groups: vec![],
            build_time: Duration::ZERO,
        })
    }

    #[test]
    fn hit_prefers_covering_attributes() {
        let mut c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        c.insert(
            "t",
            1,
            vec!["a".into(), "b".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a", "b"]),
        );
        let (_, attrs, _) = c.lookup("t", 1, &["b".into()]).unwrap();
        assert_eq!(attrs, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn version_mismatch_evicts_and_counts() {
        let mut c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        assert!(c.lookup("t", 2, &[]).is_none());
        let stats = c.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn non_covering_entry_still_usable() {
        let mut c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        assert!(
            c.lookup("t", 1, &["z".into()]).is_some(),
            "§5.2.3: coverage < 1 is usable"
        );
    }

    #[test]
    fn same_key_replaces() {
        let mut c = PartitionCache::default();
        for _ in 0..3 {
            c.insert(
                "t",
                1,
                vec!["a".into()],
                PartitionSpec::BySize { tau: 4 },
                partitioning(&["a"]),
            );
        }
        assert_eq!(c.stats().entries, 1);
    }
}
