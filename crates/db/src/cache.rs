//! The partition cache.
//!
//! SKETCHREFINE's partitionings are an *offline* artifact (§4.1 of the
//! paper: "One-time cost"): built once, reused by every query whose
//! attributes they cover. The cache keys each [`Partitioning`] by
//! (table, table **version**, attribute set, build spec); a table
//! mutation stamps a fresh version, so stale partitionings can never be
//! served — they fail the exact-version match at lookup and are evicted
//! (and counted as invalidations) by the mutation path itself.
//!
//! The cache is **internally synchronized** so concurrent sessions
//! share one instance through plain `&self`:
//!
//! * lookups take the read side of an entry lock — any number of
//!   sessions probe concurrently; per-entry LRU stamps are atomics so
//!   a read-locked hit can still record recency;
//! * structural changes (insert, invalidate) take the write side and
//!   are all short — nothing ever holds the lock across a partitioning
//!   build or an evaluation;
//! * hit/miss/invalidation counters are atomics, so no concurrent
//!   interleaving can lose an update ([`CacheStats`] totals are exact).
//!
//! Lookup deliberately does **not** evict version-mismatched entries:
//! a session planning against an older snapshot must not tear down an
//! entry another session just built for the current version. Eviction
//! belongs to the mutation path ([`PartitionCache::invalidate_stale`] /
//! [`PartitionCache::invalidate_table`]), which knows the authoritative
//! current version.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use paq_partition::Partitioning;

/// How a cached partitioning was produced (part of the cache key: the
/// same attributes at a different granularity are a different artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Built by the planner: quad tree with size threshold τ.
    BySize {
        /// The τ used.
        tau: usize,
    },
    /// Installed by the caller (e.g. a radius-limited or dynamically
    /// extracted partitioning); the id keeps distinct installations
    /// distinct.
    External {
        /// Installation sequence number.
        id: u64,
    },
}

#[derive(Debug)]
struct CacheEntry {
    table_key: String,
    version: u64,
    attributes: Vec<String>,
    spec: PartitionSpec,
    partitioning: Arc<Partitioning>,
    /// LRU stamp; atomic so a read-locked lookup can refresh it.
    last_used: AtomicU64,
}

/// Observable cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required building a partitioning.
    pub misses: u64,
    /// Entries evicted because their table version went stale.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

/// Cache of offline partitionings keyed by (table, version, attributes,
/// spec). See the module docs for the concurrency discipline.
#[derive(Debug, Default)]
pub struct PartitionCache {
    entries: RwLock<Vec<CacheEntry>>,
    tick: AtomicU64,
    next_external_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl PartitionCache {
    /// Drop entries for `table_key` *older* than `current_version`,
    /// counting them as invalidations. Called by the mutation path with
    /// the freshly stamped version. Entries at a **newer** version are
    /// kept: versions are globally monotone, so a newer entry was built
    /// for a later table state and is still valid — a mutator whose
    /// eviction pass was delayed past a subsequent mutation must not
    /// tear down what the later state already rebuilt.
    pub fn invalidate_stale(&self, table_key: &str, current_version: u64) {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|e| e.table_key != table_key || e.version >= current_version);
        let evicted = (before - entries.len()) as u64;
        drop(entries);
        self.invalidations.fetch_add(evicted, Ordering::Relaxed);
    }

    /// [`PartitionCache::invalidate_stale`], additionally returning the
    /// attribute set of every evicted entry — the delta-maintenance
    /// merge path uses them to schedule background rebuilds of exactly
    /// the artifacts queries were using.
    pub fn invalidate_stale_collect(
        &self,
        table_key: &str,
        current_version: u64,
    ) -> Vec<Vec<String>> {
        let mut evicted = Vec::new();
        let mut entries = self.entries.write();
        entries.retain(|e| {
            if e.table_key == table_key && e.version < current_version {
                evicted.push(e.attributes.clone());
                false
            } else {
                true
            }
        });
        drop(entries);
        self.invalidations
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        evicted
    }

    /// Absorb one appended row into every entry for `table_key` still
    /// keyed at `from_version`: the partitioning is patched in place
    /// (the new last row of `table` routed to its nearest group, exact
    /// stats recomputed — see [`Partitioning::patch_append`]) and the
    /// entry re-keyed to `to_version`, so the next lookup at the new
    /// version is a `Hit` with **zero** invalidations. Entries at any
    /// other version, or whose patch fails, are evicted and counted as
    /// invalidations. Returns `(patched, evicted)`.
    ///
    /// Called by the append path **under the catalog write lock**, so
    /// absorbs are serialized in version order and no single-flight
    /// build can publish at `from_version` concurrently (publishing
    /// holds the catalog read lock).
    pub fn absorb_append(
        &self,
        table_key: &str,
        from_version: u64,
        to_version: u64,
        table: &paq_relational::Table,
    ) -> (u64, u64) {
        let Some(row) = table.num_rows().checked_sub(1) else {
            return (0, 0);
        };
        let mut patched = 0u64;
        let mut evicted = 0u64;
        let mut entries = self.entries.write();
        entries.retain_mut(|e| {
            if e.table_key != table_key {
                return true;
            }
            if e.version == from_version {
                let mut p = (*e.partitioning).clone();
                if p.patch_append(table, row).is_ok() {
                    e.partitioning = Arc::new(p);
                    e.version = to_version;
                    patched += 1;
                    return true;
                }
            }
            evicted += 1;
            false
        });
        drop(entries);
        self.invalidations.fetch_add(evicted, Ordering::Relaxed);
        (patched, evicted)
    }

    /// Drop every entry for `table_key` (table dropped from the
    /// catalog).
    pub fn invalidate_table(&self, table_key: &str) {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|e| e.table_key != table_key);
        let evicted = (before - entries.len()) as u64;
        drop(entries);
        self.invalidations.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Find a usable partitioning for the table at `version` (exact
    /// version match only — entries at any other version are invisible,
    /// never served, never touched).
    ///
    /// Preference order: entries whose attribute set covers
    /// `query_attributes` (representatives then carry exact centroids
    /// for every constrained attribute), most recently used first; then
    /// any current entry (usable per §5.2.3 — missing attributes are
    /// materialized as group means), most recently used first.
    pub fn lookup(
        &self,
        table_key: &str,
        version: u64,
        query_attributes: &[String],
    ) -> Option<(Arc<Partitioning>, Vec<String>, PartitionSpec)> {
        let entries = self.entries.read();
        let covers = |e: &CacheEntry| query_attributes.iter().all(|a| e.attributes.contains(a));
        let entry = entries
            .iter()
            .filter(|e| e.table_key == table_key && e.version == version)
            .max_by_key(|e| (covers(e), e.last_used.load(Ordering::Relaxed)))?;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(tick, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some((
            Arc::clone(&entry.partitioning),
            entry.attributes.clone(),
            entry.spec.clone(),
        ))
    }

    /// Record a lookup miss (the caller is about to build).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a hit served outside [`PartitionCache::lookup`] — a
    /// session that adopted an in-flight single-flight build whose
    /// cache publish was suppressed by a racing mutation. Keeps the
    /// one-hit-or-miss-per-execution accounting exact.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a partitioning built or installed for the table at
    /// `version`. Replaces any previous entry with the same key.
    pub fn insert(
        &self,
        table_key: impl Into<String>,
        version: u64,
        attributes: Vec<String>,
        spec: PartitionSpec,
        partitioning: Arc<Partitioning>,
    ) {
        let table_key = table_key.into();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.write();
        entries.retain(|e| {
            e.table_key != table_key
                || e.version != version
                || e.attributes != attributes
                || e.spec != spec
        });
        entries.push(CacheEntry {
            table_key,
            version,
            attributes,
            spec,
            partitioning,
            last_used: AtomicU64::new(tick),
        });
    }

    /// Allocate an id for an externally installed partitioning.
    pub fn next_external_id(&self) -> u64 {
        self.next_external_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Floor the external-id counter at `id` (recovery: restored
    /// `External` entries must not collide with future installations).
    pub fn ensure_external_floor(&self, id: u64) {
        self.next_external_id.fetch_max(id, Ordering::Relaxed);
    }

    /// Every live entry as plain data, for a durability layer capturing
    /// a snapshot: `(table key, version, attributes, spec,
    /// partitioning)`. The `Arc`s are shared, not cloned contents.
    #[allow(clippy::type_complexity)]
    pub fn export(&self) -> Vec<(String, u64, Vec<String>, PartitionSpec, Arc<Partitioning>)> {
        self.entries
            .read()
            .iter()
            .map(|e| {
                (
                    e.table_key.clone(),
                    e.version,
                    e.attributes.clone(),
                    e.spec.clone(),
                    Arc::clone(&e.partitioning),
                )
            })
            .collect()
    }

    /// Current counters. Each concurrent execution contributes exactly
    /// one hit or one miss; atomics make the totals exact under any
    /// interleaving.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.entries.read().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn partitioning(attrs: &[&str]) -> Arc<Partitioning> {
        Arc::new(Partitioning {
            attributes: attrs.iter().map(|s| s.to_string()).collect(),
            groups: vec![],
            build_time: Duration::ZERO,
        })
    }

    #[test]
    fn hit_prefers_covering_attributes() {
        let c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        c.insert(
            "t",
            1,
            vec!["a".into(), "b".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a", "b"]),
        );
        let (_, attrs, _) = c.lookup("t", 1, &["b".into()]).unwrap();
        assert_eq!(attrs, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn version_mismatch_is_invisible_but_not_evicted() {
        let c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        // A lookup at another version must not serve the entry — and
        // must not tear it down either: a session planning against an
        // old snapshot is not allowed to evict what another session
        // built for the current version.
        assert!(c.lookup("t", 2, &[]).is_none());
        assert_eq!(c.stats().entries, 1, "lookup never evicts");
        assert!(c.lookup("t", 1, &[]).is_some(), "still served at v1");
    }

    #[test]
    fn mutation_path_evicts_and_counts() {
        let c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        c.invalidate_stale("t", 2);
        let stats = c.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn delayed_invalidation_keeps_newer_entries() {
        // A mutator stamped v2 but its eviction pass ran late — after a
        // later mutation (v3) already rebuilt. The delayed pass must
        // not tear down the newer, still-valid entry.
        let c = PartitionCache::default();
        c.insert(
            "t",
            3,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        c.invalidate_stale("t", 2);
        let stats = c.stats();
        assert_eq!(stats.invalidations, 0);
        assert_eq!(stats.entries, 1);
        assert!(c.lookup("t", 3, &[]).is_some());
    }

    #[test]
    fn non_covering_entry_still_usable() {
        let c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        assert!(
            c.lookup("t", 1, &["z".into()]).is_some(),
            "§5.2.3: coverage < 1 is usable"
        );
    }

    #[test]
    fn same_key_replaces() {
        let c = PartitionCache::default();
        for _ in 0..3 {
            c.insert(
                "t",
                1,
                vec!["a".into()],
                PartitionSpec::BySize { tau: 4 },
                partitioning(&["a"]),
            );
        }
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn absorb_append_patches_and_rekeys_without_invalidation() {
        use paq_relational::{DataType, Schema, Table, Value};
        let mut t = Table::new(Schema::from_pairs(&[("a", DataType::Float)]));
        for v in [1.0, 2.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let c = PartitionCache::default();
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            Arc::new(Partitioning {
                attributes: vec!["a".into()],
                groups: vec![paq_partition::Group {
                    gid: 1,
                    rows: vec![0, 1],
                    representative: vec![1.5],
                    radius: 0.5,
                }],
                build_time: Duration::ZERO,
            }),
        );
        t.push_row(vec![Value::Float(3.0)]).unwrap();
        let (patched, evicted) = c.absorb_append("t", 1, 2, &t);
        assert_eq!((patched, evicted), (1, 0));
        assert!(c.lookup("t", 1, &[]).is_none(), "old key is gone");
        let (p, _, _) = c.lookup("t", 2, &[]).unwrap();
        assert_eq!(p.groups[0].rows, vec![0, 1, 2]);
        assert_eq!(c.stats().invalidations, 0, "absorb is not an invalidation");
    }

    #[test]
    fn absorb_append_evicts_what_it_cannot_patch() {
        use paq_relational::{DataType, Schema, Table, Value};
        let mut t = Table::new(Schema::from_pairs(&[("a", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        let c = PartitionCache::default();
        // Group-less partitioning: patch_append has nowhere to route.
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        // Stale version: not eligible for patching either.
        c.insert(
            "t",
            0,
            vec!["a".into()],
            PartitionSpec::External { id: 1 },
            partitioning(&["a"]),
        );
        t.push_row(vec![Value::Float(2.0)]).unwrap();
        let (patched, evicted) = c.absorb_append("t", 1, 2, &t);
        assert_eq!((patched, evicted), (0, 2));
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn concurrent_counters_lose_nothing() {
        let c = Arc::new(PartitionCache::default());
        c.insert(
            "t",
            1,
            vec!["a".into()],
            PartitionSpec::BySize { tau: 4 },
            partitioning(&["a"]),
        );
        let per_thread = 200u64;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        assert!(c.lookup("t", 1, &[]).is_some());
                        c.record_miss();
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.hits, 4 * per_thread);
        assert_eq!(stats.misses, 4 * per_thread);
    }
}
