#![warn(missing_docs)]

//! # paq-db — the `PackageDb` session layer
//!
//! The paper presents PaQL + DIRECT + SKETCHREFINE as one *system*
//! (PackageBuilder) sitting on top of a DBMS. This crate is that front
//! door: a stateful session that owns tables, reuses offline
//! partitionings across queries, and routes each query to the right
//! evaluator.
//!
//! * [`PackageDb`] — a cheap, cloneable **session handle** onto one
//!   shared database core. [`PackageDb::session`] (or `clone()`) gives
//!   each concurrent client its own handle; all catalog and execution
//!   methods take `&self`, so sessions run from plain shared references
//!   across threads. The shared core holds:
//!   * a **catalog** ([`catalog`]) of named, versioned tables behind a
//!     reader–writer lock, so `FROM Recipes R` binds by name
//!     (case-insensitively), unknown tables produce a typed error, and
//!     executions plan against an immutable `Arc<Table>` snapshot while
//!     writers stamp globally-monotone versions;
//!   * a **partition cache** ([`cache`]) keyed by
//!     (table, version, attribute set, build spec): partitionings are
//!     built lazily — and *single-flight* across racing sessions — on
//!     first SKETCHREFINE use, reused by later queries (§4.1 "One-time
//!     cost"), and invalidated when the table mutates; counters are
//!     atomics, so stats stay exact under concurrency;
//!   * a **cost-based planner** ([`PackageDb::execute`]) that routes
//!     each query to DIRECT or SKETCHREFINE by per-strategy predicted
//!     cost, learned online from an execution-telemetry history ring
//!     shared by all sessions ([`router`]); until the model is warm it
//!     falls back — bit-identically — to the static ladder (row count
//!     vs. a configurable direct-threshold, `REPEAT` bounds,
//!     partitioning availability). Every [`Execution`]'s
//!     [`explain`](Execution::explain) names the route, the predicted
//!     costs, and whether the model or the fallback decided.
//! * [`DbConfig`] / [`Route`] — *per-session* tuning and routing
//!   control (the low-level [`paq_core::Evaluator`] trait stays public
//!   for benchmarks and ablations).
//! * [`DbError`] — typed session errors (unknown table, schema
//!   mismatch, invalid partitioning, plus language/engine passthrough).
//!
//! Programmatic queries come from [`paq_lang::Paql`], whose builder
//! produces exactly the AST the parser yields; [`PackageDb::execute_query`]
//! accepts both.

pub mod cache;
pub mod catalog;
pub mod durability;
pub mod error;
pub mod execution;
pub mod router;
pub mod session;

pub use cache::{CacheStats, PartitionSpec};
pub use catalog::{Catalog, TableEntry};
pub use durability::{AckImage, AckKind, Durability, DurabilityStats, SyncPolicy};
pub use error::{DbError, DbResult};
pub use execution::{CacheOutcome, Execution, RouteReason, RouterVerdict, Strategy, Timings};
pub use router::{Observation, PredictedCosts, RouterConfig, RouterDecision, RouterStats};
pub use session::{
    DbConfig, DbStats, MaintenanceConfig, MaintenanceStats, ObsConfig, PackageDb, Route, SlowQuery,
    TableStats,
};
// The sink [`PackageDb::set_telemetry`] accepts, re-exported so callers
// don't need a direct paq-solver dependency to use it.
pub use paq_solver::Telemetry;
