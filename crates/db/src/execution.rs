//! The structured result of one `PackageDb::execute` call.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use paq_core::{Package, SketchRefineReport};
use paq_obs::Trace;

use crate::router::PredictedCosts;

/// The evaluation strategy the planner chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One monolithic ILP over the full base relation (§3.2).
    Direct,
    /// Sketch over representatives, then refine group by group (§4).
    SketchRefine,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Direct => write!(f, "DIRECT"),
            Strategy::SketchRefine => write!(f, "SKETCHREFINE"),
        }
    }
}

/// Why the planner picked the strategy it picked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteReason {
    /// The caller forced the strategy (`Route::Force*`).
    Forced,
    /// Unlimited `REPEAT`: the sketch's per-representative caps
    /// `|G_j|·(1+K)` are all infinite, so sketching degenerates —
    /// DIRECT handles unbounded multiplicity natively.
    UnboundedRepeat,
    /// The base table is at or below the direct-threshold; one exact
    /// ILP is cheap.
    SmallTable {
        /// Table row count.
        rows: usize,
        /// The configured threshold it did not exceed.
        threshold: usize,
    },
    /// The base table exceeds the direct-threshold; route to
    /// SKETCHREFINE over a (cached or lazily built) partitioning.
    LargeTable {
        /// Table row count.
        rows: usize,
        /// The configured threshold it exceeded.
        threshold: usize,
    },
    /// SKETCHREFINE was indicated but no numeric attribute exists to
    /// partition on, so DIRECT is the only executable plan.
    NoPartitionAttributes,
    /// The telemetry-fed cost model predicted this strategy cheaper;
    /// the predictions live in [`Execution::router`]
    /// ([`RouterVerdict::Model`]).
    CostModel,
}

impl fmt::Display for RouteReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteReason::Forced => write!(f, "strategy forced by caller"),
            RouteReason::UnboundedRepeat => {
                write!(f, "unlimited REPEAT makes sketch group caps infinite")
            }
            RouteReason::SmallTable { rows, threshold } => {
                write!(
                    f,
                    "table within direct-threshold ({rows} <= {threshold} rows)"
                )
            }
            RouteReason::LargeTable { rows, threshold } => {
                write!(
                    f,
                    "table above direct-threshold ({rows} > {threshold} rows)"
                )
            }
            RouteReason::NoPartitionAttributes => {
                write!(f, "no numeric attributes available for partitioning")
            }
            RouteReason::CostModel => {
                write!(f, "cost model predicted it cheaper (see router line)")
            }
        }
    }
}

/// How the cost-based router participated in route selection — always
/// reported, so `explain()` can say whether the model or the fallback
/// decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouterVerdict {
    /// The caller pinned the route (`Route::Force*` / wire
    /// `ExecOptions.route`); the model was not consulted.
    Pinned,
    /// The warm model decided, with these per-strategy predictions.
    Model(PredictedCosts),
    /// The static threshold ladder decided: cold start, router
    /// disabled, or SKETCHREFINE not executable for this plan.
    Fallback {
        /// DIRECT observations in the telemetry ring at plan time.
        direct_samples: usize,
        /// SKETCHREFINE observations in the telemetry ring at plan
        /// time.
        sketchrefine_samples: usize,
    },
}

impl fmt::Display for RouterVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterVerdict::Pinned => {
                write!(f, "route pinned by caller; model not consulted")
            }
            RouterVerdict::Model(p) => write!(
                f,
                "model decided — predicted DIRECT {:.3}ms vs SKETCHREFINE {:.3}ms \
                 ({} + {} samples) → {}",
                p.direct_ms,
                p.sketchrefine_ms,
                p.direct_samples,
                p.sketchrefine_samples,
                p.cheaper(),
            ),
            RouterVerdict::Fallback {
                direct_samples,
                sketchrefine_samples,
            } => write!(
                f,
                "fallback decided — static threshold \
                 ({direct_samples} DIRECT / {sketchrefine_samples} SKETCHREFINE samples)",
            ),
        }
    }
}

/// How the partition cache participated in the execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// DIRECT route: no partitioning involved.
    NotUsed,
    /// An offline partitioning built earlier was reused.
    Hit {
        /// Number of groups in the reused partitioning.
        groups: usize,
        /// Its partitioning attributes.
        attributes: Vec<String>,
    },
    /// No usable partitioning was cached; one was built (and cached for
    /// the next query).
    Miss {
        /// Number of groups in the freshly built partitioning.
        groups: usize,
        /// Its partitioning attributes.
        attributes: Vec<String>,
    },
    /// The caller supplied the partitioning directly
    /// (`PackageDb::execute_with_partitioning`); the cache was bypassed.
    Provided {
        /// Number of groups in the supplied partitioning.
        groups: usize,
        /// Its partitioning attributes.
        attributes: Vec<String>,
    },
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheOutcome::NotUsed => write!(f, "not used"),
            CacheOutcome::Hit { groups, attributes } => {
                write!(f, "hit ({groups} groups on [{}])", attributes.join(", "))
            }
            CacheOutcome::Miss { groups, attributes } => {
                write!(
                    f,
                    "miss — built {groups} groups on [{}]",
                    attributes.join(", ")
                )
            }
            CacheOutcome::Provided { groups, attributes } => {
                write!(
                    f,
                    "provided by caller ({groups} groups on [{}])",
                    attributes.join(", ")
                )
            }
        }
    }
}

/// Wall-clock breakdown of one execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Name resolution, validation, and route selection.
    pub plan: Duration,
    /// Partitioning build time (zero on DIRECT routes and warm cache
    /// hits; for a hit served by waiting on another session's
    /// in-flight build, the time spent waiting).
    pub partitioning: Duration,
    /// Evaluator time (including any DIRECT fallback).
    pub evaluate: Duration,
    /// End-to-end time of the `execute` call.
    pub total: Duration,
}

/// The structured answer of one [`PackageDb`](crate::PackageDb)
/// execution: the package plus everything needed to understand *how*
/// it was produced.
///
/// ```
/// use paq_db::PackageDb;
/// use paq_relational::{DataType, Schema, Table, Value};
///
/// let mut table = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     table.push_row(vec![Value::Float(v)]).unwrap();
/// }
/// let mut db = PackageDb::new();
/// db.register_table("Points", table);
/// let exec = db
///     .execute("SELECT PACKAGE(R) AS P FROM Points R REPEAT 0 \
///               SUCH THAT COUNT(P.*) = 2 MINIMIZE SUM(P.x)")
///     .unwrap();
/// assert_eq!(exec.package.cardinality(), 2);
/// println!("{}", exec.explain());
/// ```
#[derive(Debug, Clone)]
pub struct Execution {
    /// The answer package.
    pub package: Package,
    /// Resolved relation name (original casing from the catalog).
    pub relation: String,
    /// Row count of the input table at execution time.
    pub rows: usize,
    /// Catalog version of the input table at execution time.
    pub table_version: u64,
    /// The strategy that produced [`Execution::package`].
    pub strategy: Strategy,
    /// Why the planner routed there.
    pub reason: RouteReason,
    /// The cost-based router's verdict: model, fallback, or pinned —
    /// with predicted per-strategy costs when the model decided.
    pub router: RouterVerdict,
    /// Partition-cache participation.
    pub cache: CacheOutcome,
    /// SKETCHREFINE work counters (`None` on DIRECT executions).
    pub report: Option<SketchRefineReport>,
    /// `true` when SKETCHREFINE reported possibly-false infeasibility
    /// and the planner re-ran the query with DIRECT (§4.4 discussion:
    /// the unpartitioned problem cannot be falsely infeasible).
    pub fell_back_to_direct: bool,
    /// Wall-clock breakdown.
    pub timings: Timings,
    /// The request's span trace (`None` when observability is
    /// disabled); [`Execution::explain`] renders it as a nested timing
    /// tree.
    pub trace: Option<Arc<Trace>>,
}

impl Execution {
    /// Human-readable account of the plan: chosen strategy, routing
    /// reason, cache participation, timings, and (for SKETCHREFINE)
    /// work counters.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "relation:     {} ({} rows, catalog version {})\n",
            self.relation, self.rows, self.table_version
        ));
        out.push_str(&format!(
            "strategy:     {} — {}\n",
            self.strategy, self.reason
        ));
        out.push_str(&format!("router:       {}\n", self.router));
        if self.fell_back_to_direct {
            out.push_str(
                "fallback:     SKETCHREFINE reported possibly-false infeasibility; \
                 re-ran with DIRECT\n",
            );
        }
        out.push_str(&format!("partitioning: {}\n", self.cache));
        if let Some(r) = &self.report {
            out.push_str(&format!(
                "sketchrefine: {} solver calls, {} backtracks, {} groups refined{}\n",
                r.solver_calls,
                r.backtracks,
                r.groups_refined,
                if r.used_hybrid {
                    ", hybrid sketch used"
                } else {
                    ""
                },
            ));
            if r.waves > 0 {
                out.push_str(&format!(
                    "parallel:     {} waves, {} wave solves, {} conflict re-queues\n",
                    r.waves, r.parallel_solves, r.conflict_requeues,
                ));
            }
        }
        out.push_str(&format!(
            "timings:      plan {:.3}ms, partitioning {:.3}ms, evaluate {:.3}ms, total {:.3}ms",
            self.timings.plan.as_secs_f64() * 1e3,
            self.timings.partitioning.as_secs_f64() * 1e3,
            self.timings.evaluate.as_secs_f64() * 1e3,
            self.timings.total.as_secs_f64() * 1e3,
        ));
        if let Some(trace) = &self.trace {
            let tree = trace.render();
            if !tree.is_empty() {
                out.push_str("\nspans:\n");
                for line in tree.lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
                // Drop the trailing newline so explain() stays
                // newline-free at the end, like every other section.
                out.pop();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_mentions_strategy_reason_and_cache() {
        let exec = Execution {
            package: Package::empty(),
            relation: "Recipes".into(),
            rows: 5000,
            table_version: 2,
            strategy: Strategy::SketchRefine,
            reason: RouteReason::LargeTable {
                rows: 5000,
                threshold: 2000,
            },
            router: RouterVerdict::Fallback {
                direct_samples: 0,
                sketchrefine_samples: 0,
            },
            cache: CacheOutcome::Hit {
                groups: 12,
                attributes: vec!["kcal".into()],
            },
            report: Some(SketchRefineReport::default()),
            fell_back_to_direct: false,
            timings: Timings::default(),
            trace: None,
        };
        let text = exec.explain();
        assert!(text.contains("SKETCHREFINE"));
        assert!(text.contains("above direct-threshold"));
        assert!(
            text.contains("fallback decided — static threshold"),
            "{text}"
        );
        assert!(text.contains("hit (12 groups on [kcal])"));
        assert!(text.contains("solver calls"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Strategy::Direct.to_string(), "DIRECT");
        assert!(CacheOutcome::NotUsed.to_string().contains("not used"));
        assert!(RouteReason::Forced.to_string().contains("forced"));
        assert!(RouteReason::CostModel.to_string().contains("cost model"));
        assert!(RouterVerdict::Pinned.to_string().contains("pinned"));
        let model = RouterVerdict::Model(PredictedCosts {
            direct_ms: 12.5,
            sketchrefine_ms: 1.25,
            direct_samples: 4,
            sketchrefine_samples: 6,
        });
        let text = model.to_string();
        assert!(text.contains("12.500ms"), "{text}");
        assert!(text.contains("1.250ms"), "{text}");
        assert!(text.contains("→ SKETCHREFINE"), "{text}");
    }
}
