//! Cost-based routing: a telemetry-fed model that learns the
//! Direct-vs-SketchRefine crossover.
//!
//! The paper shows SKETCHREFINE pays off only past a
//! data-size/constraint-complexity crossover (§5); a static row-count
//! threshold pins that crossover by fiat. This module replaces it with
//! a small **online cost model**: one linear predictor per strategy
//! over the [`QueryFeatures`] vector (rows, constraint count, `REPEAT`
//! bound, partition group-size target τ), trained by normalized
//! least-mean-squares over an execution-telemetry **history ring**
//! owned by the shared database state. Every clean execution — routed,
//! forced, or benchmarked — appends one [`Observation`]; every
//! `Route::Auto` plan replays the ring through [`decide`].
//!
//! # Determinism
//!
//! [`decide`] is a pure function of `(features, history snapshot,
//! config)`: the models are re-fit by replaying the ring **in
//! insertion order** with fixed-precision `f64` arithmetic, so
//! identical telemetry history produces bit-identical predictions and
//! therefore identical routes — at any thread count, from any session.
//! No clocks, no randomness, no global state.
//!
//! # Cold start and escape hatches
//!
//! Until the ring holds at least [`RouterConfig::min_samples`]
//! observations of **each** strategy, [`decide`] reports
//! [`RouterDecision::ColdStart`] and the planner falls back to the
//! legacy threshold ladder — bit-identical to the pre-router planner.
//! A pinned route (`Route::ForceDirect` / `Route::ForceSketchRefine`,
//! or the wire `ExecOptions.route`) always wins: the model is not even
//! consulted.

use std::collections::VecDeque;
use std::time::Duration;

use paq_core::{QueryFeatures, FEATURE_DIM};

use crate::execution::Strategy;

/// Per-session knobs of the cost-based router (part of
/// [`DbConfig`](crate::DbConfig)).
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Consult the model on `Route::Auto` plans and record execution
    /// telemetry. Disabled, the planner is exactly the static
    /// threshold ladder and the history ring stays untouched.
    pub enabled: bool,
    /// Observations of **each** strategy required before the model may
    /// override the threshold; below it every plan is a cold-start
    /// fallback.
    pub min_samples: usize,
    /// History ring capacity: the newest this many observations are
    /// kept. The ring is *shared* database state, so the capacity is
    /// fixed when the database is created
    /// ([`PackageDb::with_config`](crate::PackageDb::with_config));
    /// changing it on a live session has no effect — per-session
    /// tuning must never let one client degrade another's routing.
    pub capacity: usize,
    /// Normalized-LMS step size μ. Values are clamped into `(0, 2)` at
    /// fit time — the NLMS stability region — so no setting can make
    /// predictions diverge.
    pub learning_rate: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            enabled: true,
            min_samples: 3,
            capacity: 64,
            learning_rate: 0.5,
        }
    }
}

/// One execution-telemetry datapoint: which strategy ran, on what
/// features, at what observed cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Plan-time features of the executed query.
    pub features: QueryFeatures,
    /// The strategy that produced the cost.
    pub strategy: Strategy,
    /// Observed evaluation cost (DIRECT: evaluator wall-clock;
    /// SKETCHREFINE: sketch + refine, excluding the amortized
    /// partitioning build).
    pub cost: Duration,
}

/// The shared execution-telemetry history: a bounded ring of the most
/// recent [`Observation`]s, oldest first. The capacity is fixed at
/// construction (see [`RouterConfig::capacity`]).
#[derive(Debug)]
pub struct TelemetryRing {
    obs: VecDeque<Observation>,
    capacity: usize,
}

impl Default for TelemetryRing {
    fn default() -> Self {
        TelemetryRing::with_capacity(RouterConfig::default().capacity)
    }
}

impl TelemetryRing {
    /// An empty ring keeping at most `capacity` observations (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TelemetryRing {
            obs: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append an observation, evicting the oldest beyond the ring's
    /// capacity.
    pub fn record(&mut self, obs: Observation) {
        self.obs.push_back(obs);
        while self.obs.len() > self.capacity {
            self.obs.pop_front();
        }
    }

    /// The ring contents in insertion order (the replay order
    /// [`decide`] fits models in).
    pub fn snapshot(&self) -> Vec<Observation> {
        self.obs.iter().copied().collect()
    }

    /// (DIRECT, SKETCHREFINE) observation counts currently held.
    pub fn counts(&self) -> (usize, usize) {
        let direct = self
            .obs
            .iter()
            .filter(|o| o.strategy == Strategy::Direct)
            .count();
        (direct, self.obs.len() - direct)
    }
}

/// One strategy's linear cost predictor, fit by replaying history.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CostModel {
    weights: [f64; FEATURE_DIM],
    samples: usize,
}

impl CostModel {
    /// Fit a model for `strategy` by one normalized-LMS pass over
    /// `history` in order: `w += μ · (y − w·x) · x / ‖x‖²`. The bias
    /// term keeps `‖x‖² ≥ 1`, and μ is clamped into the NLMS stability
    /// region, so weights stay finite for every input sequence.
    fn fit(history: &[Observation], strategy: Strategy, learning_rate: f64) -> CostModel {
        let mu = learning_rate.clamp(1e-6, 1.999);
        let mut weights = [0.0; FEATURE_DIM];
        let mut samples = 0;
        for obs in history.iter().filter(|o| o.strategy == strategy) {
            samples += 1;
            let x = obs.features.vector();
            let y = obs.cost.as_secs_f64() * 1e3;
            let prediction: f64 = weights.iter().zip(&x).map(|(w, xi)| w * xi).sum();
            let norm: f64 = x.iter().map(|xi| xi * xi).sum();
            let step = mu * (y - prediction) / norm;
            for (w, xi) in weights.iter_mut().zip(&x) {
                *w += step * xi;
            }
        }
        CostModel { weights, samples }
    }

    /// Predicted cost in milliseconds, clamped at zero (a linear model
    /// extrapolating down-scale can cross zero; a negative cost can
    /// never be justified to a caller reading `explain()`).
    fn predict(&self, features: &QueryFeatures) -> f64 {
        let x = features.vector();
        let raw: f64 = self.weights.iter().zip(&x).map(|(w, xi)| w * xi).sum();
        raw.max(0.0)
    }

    /// `true` when every weight is a normal number (defensive: NaN
    /// costs injected into the ring must demote the model to cold
    /// start, never decide a route).
    fn is_finite(&self) -> bool {
        self.weights.iter().all(|w| w.is_finite())
    }
}

/// The model's per-strategy cost predictions for one plan, in
/// milliseconds, plus the sample counts that back them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedCosts {
    /// Predicted DIRECT evaluation cost (ms, ≥ 0).
    pub direct_ms: f64,
    /// Predicted SKETCHREFINE evaluation cost (ms, ≥ 0).
    pub sketchrefine_ms: f64,
    /// DIRECT observations the model was fit on.
    pub direct_samples: usize,
    /// SKETCHREFINE observations the model was fit on.
    pub sketchrefine_samples: usize,
}

impl PredictedCosts {
    /// The strategy the predictions justify (ties go to DIRECT — the
    /// exact strategy — deterministically).
    pub fn cheaper(&self) -> Strategy {
        if self.direct_ms <= self.sketchrefine_ms {
            Strategy::Direct
        } else {
            Strategy::SketchRefine
        }
    }
}

/// Outcome of consulting the router for one `Route::Auto` plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouterDecision {
    /// Both per-strategy models are warm; route to
    /// [`PredictedCosts::cheaper`].
    Model(PredictedCosts),
    /// Not enough history for at least one strategy — the caller must
    /// fall back to the static threshold ladder.
    ColdStart {
        /// DIRECT observations currently in the ring.
        direct_samples: usize,
        /// SKETCHREFINE observations currently in the ring.
        sketchrefine_samples: usize,
    },
}

/// Decide a route from a telemetry-history snapshot. Pure and
/// deterministic: identical `(features, history, config)` always
/// returns the identical decision (see the [module docs](self)).
pub fn decide(
    features: &QueryFeatures,
    history: &[Observation],
    config: &RouterConfig,
) -> RouterDecision {
    let direct = CostModel::fit(history, Strategy::Direct, config.learning_rate);
    let sketchrefine = CostModel::fit(history, Strategy::SketchRefine, config.learning_rate);
    let min = config.min_samples.max(1);
    if direct.samples < min
        || sketchrefine.samples < min
        || !direct.is_finite()
        || !sketchrefine.is_finite()
    {
        return RouterDecision::ColdStart {
            direct_samples: direct.samples,
            sketchrefine_samples: sketchrefine.samples,
        };
    }
    RouterDecision::Model(PredictedCosts {
        direct_ms: direct.predict(features),
        sketchrefine_ms: sketchrefine.predict(features),
        direct_samples: direct.samples,
        sketchrefine_samples: sketchrefine.samples,
    })
}

/// Observable router counters, shared across every session of a
/// database (part of [`DbStats`](crate::DbStats) and the server's
/// `Stats` reply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// DIRECT observations currently in the history ring.
    pub direct_samples: usize,
    /// SKETCHREFINE observations currently in the history ring.
    pub sketchrefine_samples: usize,
    /// `Route::Auto` plans the warm model decided.
    pub model_decisions: u64,
    /// `Route::Auto` plans the threshold fallback decided (cold start,
    /// router disabled, or SKETCHREFINE not executable).
    pub fallback_decisions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_lang::parse_paql;

    fn features(rows: usize) -> QueryFeatures {
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM Items R REPEAT 0 SUCH THAT COUNT(P.*) = 3 \
             MINIMIZE SUM(P.value)",
        )
        .unwrap();
        QueryFeatures::extract(&q, rows, 10)
    }

    fn obs(rows: usize, strategy: Strategy, ms: u64) -> Observation {
        Observation {
            features: features(rows),
            strategy,
            cost: Duration::from_millis(ms),
        }
    }

    #[test]
    fn ring_trims_to_capacity_oldest_first() {
        let mut ring = TelemetryRing::with_capacity(4);
        for i in 0..10 {
            ring.record(obs(100 + i, Strategy::Direct, 1));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].features.rows, 106, "oldest surviving entry");
        assert_eq!(ring.counts(), (4, 0));
    }

    #[test]
    fn cold_start_until_both_strategies_have_min_samples() {
        let config = RouterConfig::default();
        let mut history = vec![obs(500, Strategy::SketchRefine, 2); 10];
        match decide(&features(500), &history, &config) {
            RouterDecision::ColdStart {
                direct_samples,
                sketchrefine_samples,
            } => {
                assert_eq!(direct_samples, 0);
                assert_eq!(sketchrefine_samples, 10);
            }
            other => panic!("expected cold start, got {other:?}"),
        }
        history.extend([obs(500, Strategy::Direct, 20); 3]);
        assert!(matches!(
            decide(&features(500), &history, &config),
            RouterDecision::Model(_)
        ));
    }

    #[test]
    fn warm_model_prefers_the_consistently_cheaper_strategy() {
        let config = RouterConfig::default();
        let mut history = Vec::new();
        for _ in 0..6 {
            history.push(obs(500, Strategy::Direct, 40));
            history.push(obs(500, Strategy::SketchRefine, 2));
        }
        match decide(&features(500), &history, &config) {
            RouterDecision::Model(p) => {
                assert!(p.direct_ms > p.sketchrefine_ms, "{p:?}");
                assert_eq!(p.cheaper(), Strategy::SketchRefine);
                assert_eq!((p.direct_samples, p.sketchrefine_samples), (6, 6));
            }
            other => panic!("expected model decision, got {other:?}"),
        }
    }

    #[test]
    fn decisions_are_bit_identical_across_replays() {
        let config = RouterConfig::default();
        let history: Vec<Observation> = (0..20)
            .map(|i| {
                obs(
                    100 * (i + 1),
                    if i % 3 == 0 {
                        Strategy::Direct
                    } else {
                        Strategy::SketchRefine
                    },
                    (7 * i + 1) as u64,
                )
            })
            .collect();
        let first = decide(&features(750), &history, &config);
        for _ in 0..5 {
            assert_eq!(decide(&features(750), &history, &config), first);
        }
    }

    #[test]
    fn extreme_learning_rates_cannot_diverge() {
        let config = RouterConfig {
            learning_rate: 1e18, // clamped into the NLMS stability region
            ..RouterConfig::default()
        };
        let mut history = Vec::new();
        for i in 0..50 {
            history.push(obs(1 + i, Strategy::Direct, u64::MAX / 1_000_000));
            history.push(obs(1 + i, Strategy::SketchRefine, 0));
        }
        match decide(&features(10), &history, &config) {
            RouterDecision::Model(p) => {
                assert!(p.direct_ms.is_finite() && p.direct_ms >= 0.0);
                assert!(p.sketchrefine_ms.is_finite() && p.sketchrefine_ms >= 0.0);
            }
            other => panic!("expected model decision, got {other:?}"),
        }
    }
}
