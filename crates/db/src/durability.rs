//! The durability layer: opt-in persistence for a [`PackageDb`].
//!
//! A database opened with [`PackageDb::open`] wires a `paq-store`
//! [`Store`] behind the session layer:
//!
//! * every catalog mutation is logged to the WAL **inside the catalog
//!   write critical section**, stamped with the version it produced —
//!   so file order equals LSN order with no gaps, and a mutation is
//!   acknowledged only after it is logged;
//! * snapshots ([`PackageDb::snapshot_now`], or automatic every
//!   [`Durability::snapshot_every`] records) capture the catalog, the
//!   partition cache, and the router telemetry ring, then truncate the
//!   WAL;
//! * reopening the same directory replays the WAL over the latest
//!   snapshot — in parallel, partitioned by table — and republishes
//!   everything: tables at their original versions, partitionings as
//!   cache entries that `lookup` serves as `Hit`s, and telemetry that
//!   warm-starts the cost-based router.
//!
//! This module holds the plain-data plumbing: the [`Durability`]
//! config, the [`DurabilityStats`] counters, the internal engine-side
//! state, and the mappings between engine types and the store's
//! persistence images.
//!
//! [`PackageDb`]: crate::PackageDb
//! [`PackageDb::open`]: crate::PackageDb::open
//! [`PackageDb::snapshot_now`]: crate::PackageDb::snapshot_now

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use paq_core::QueryFeatures;
use paq_store::{SpecImage, Store, StrategyKind, TelemetryImage};

pub use paq_store::{AckImage, AckKind, FaultDecision, FaultInjector, FaultSite, SyncPolicy};

use crate::cache::PartitionSpec;
use crate::error::DbError;
use crate::execution::Strategy;
use crate::router::Observation;

/// Persistence configuration for [`PackageDb::open`].
///
/// [`PackageDb::open`]: crate::PackageDb::open
#[derive(Debug, Clone)]
pub struct Durability {
    /// Directory holding the WAL and snapshots (created if absent).
    pub dir: PathBuf,
    /// When WAL appends reach the disk. [`SyncPolicy::Always`] fsyncs
    /// every append; [`SyncPolicy::Manual`] leaves flushing to the
    /// caller (e.g. a server's flush-on-mutation policy).
    pub sync: SyncPolicy,
    /// Automatically snapshot (and truncate the WAL) once this many
    /// records accumulate since the last snapshot. `None` leaves
    /// snapshots entirely to [`PackageDb::snapshot_now`].
    ///
    /// [`PackageDb::snapshot_now`]: crate::PackageDb::snapshot_now
    pub snapshot_every: Option<u64>,
    /// Worker threads for parallel WAL replay on open (1 = sequential).
    /// Replay is deterministic at every thread count.
    pub replay_threads: usize,
    /// Optional fault injector handed down to the store, consulted
    /// before each WAL/snapshot file operation. `None` (the default)
    /// is the production path; chaos tests install a seeded plan here.
    pub injector: Option<Arc<dyn FaultInjector>>,
}

impl Durability {
    /// Durability rooted at `dir` with full per-append syncing, manual
    /// snapshots, and sequential replay.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Durability {
            dir: dir.into(),
            sync: SyncPolicy::default(),
            snapshot_every: None,
            replay_threads: 1,
            injector: None,
        }
    }
}

/// Observable durability counters, merged from the store's activity
/// counters and what recovery found at open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended since open.
    pub wal_records: u64,
    /// WAL bytes appended since open.
    pub wal_bytes: u64,
    /// WAL syncs performed since open.
    pub wal_syncs: u64,
    /// WAL append/sync failures (the store fail-stops on the first).
    pub wal_errors: u64,
    /// Snapshots written since open.
    pub snapshots_written: u64,
    /// LSN of the most recent snapshot (from this run or recovery).
    pub last_snapshot_lsn: u64,
    /// Records appended since the last snapshot.
    pub records_since_snapshot: u64,
    /// Tables recovered at open.
    pub recovered_tables: u64,
    /// Partitionings republished into the cache at open.
    pub recovered_partitionings: u64,
    /// Router-telemetry observations replayed at open.
    pub recovered_telemetry: u64,
    /// Acked idempotency tokens restored at open (snapshot + WAL).
    pub recovered_acks: u64,
    /// WAL records replayed over the snapshot at open.
    pub wal_replayed_records: u64,
    /// Torn-tail bytes truncated from the WAL at open.
    pub wal_tail_dropped_bytes: u64,
}

/// Engine-side durable state: the open store plus recovery counters.
/// Lock order: the catalog lock (read or write) is always taken
/// *before* the store lock; the router-ring lock, when needed, comes
/// between the two and is released before the store lock is taken.
#[derive(Debug)]
pub(crate) struct DurabilityState {
    pub(crate) store: Mutex<Store>,
    pub(crate) snapshot_every: Option<u64>,
    pub(crate) recovered_tables: u64,
    pub(crate) recovered_partitionings: u64,
    pub(crate) recovered_telemetry: u64,
    pub(crate) recovered_acks: u64,
    pub(crate) wal_replayed_records: u64,
    pub(crate) wal_tail_dropped_bytes: u64,
    /// Acked `(token → version)` pairs, oldest first, bounded at
    /// [`DurabilityState::ACK_CAPACITY`]. Appended when a tokened
    /// mutation is logged; exported into every snapshot (the WAL
    /// records themselves carry the tokens, but a snapshot truncates
    /// the WAL, so the acks must ride the snapshot too).
    pub(crate) acked: Mutex<VecDeque<AckImage>>,
}

impl DurabilityState {
    /// Most acked tokens remembered (matches the server's default
    /// dedupe window; FIFO eviction).
    pub(crate) const ACK_CAPACITY: usize = 1024;

    /// Keep the newest [`DurabilityState::ACK_CAPACITY`] acks.
    pub(crate) fn bounded_acks(mut acks: Vec<AckImage>) -> VecDeque<AckImage> {
        if acks.len() > Self::ACK_CAPACITY {
            acks.drain(..acks.len() - Self::ACK_CAPACITY);
        }
        acks.into()
    }

    /// Merge the store's live counters with the recovery counters.
    pub(crate) fn stats(&self) -> DurabilityStats {
        let s = self.store.lock().stats();
        DurabilityStats {
            wal_records: s.wal_records,
            wal_bytes: s.wal_bytes,
            wal_syncs: s.wal_syncs,
            wal_errors: s.wal_errors,
            snapshots_written: s.snapshots_written,
            last_snapshot_lsn: s.last_snapshot_lsn,
            records_since_snapshot: s.records_since_snapshot,
            recovered_tables: self.recovered_tables,
            recovered_partitionings: self.recovered_partitionings,
            recovered_telemetry: self.recovered_telemetry,
            recovered_acks: self.recovered_acks,
            wal_replayed_records: self.wal_replayed_records,
            wal_tail_dropped_bytes: self.wal_tail_dropped_bytes,
        }
    }
}

/// Map a store error into the session-layer error type.
pub(crate) fn storage_error(e: paq_store::StoreError) -> DbError {
    DbError::Storage {
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// Engine type ↔ persistence image mappings
// ---------------------------------------------------------------------

pub(crate) fn spec_to_image(spec: &PartitionSpec) -> SpecImage {
    match spec {
        PartitionSpec::BySize { tau } => SpecImage::BySize { tau: *tau as u64 },
        PartitionSpec::External { id } => SpecImage::External { id: *id },
    }
}

pub(crate) fn spec_from_image(img: SpecImage) -> PartitionSpec {
    match img {
        SpecImage::BySize { tau } => PartitionSpec::BySize { tau: tau as usize },
        SpecImage::External { id } => PartitionSpec::External { id },
    }
}

pub(crate) fn observation_to_image(o: &Observation) -> TelemetryImage {
    TelemetryImage {
        rows: o.features.rows as u64,
        constraints: o.features.constraints as u64,
        repeat_bound: o.features.repeat_bound,
        tau: o.features.tau as u64,
        strategy: match o.strategy {
            Strategy::Direct => StrategyKind::Direct,
            Strategy::SketchRefine => StrategyKind::SketchRefine,
        },
        cost_nanos: o.cost.as_nanos().min(u64::MAX as u128) as u64,
    }
}

pub(crate) fn observation_from_image(img: &TelemetryImage) -> Observation {
    Observation {
        features: QueryFeatures {
            rows: img.rows as usize,
            constraints: img.constraints as usize,
            repeat_bound: img.repeat_bound,
            tau: img.tau as usize,
        },
        strategy: match img.strategy {
            StrategyKind::Direct => Strategy::Direct,
            StrategyKind::SketchRefine => Strategy::SketchRefine,
        },
        cost: Duration::from_nanos(img.cost_nanos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_mapping_round_trips() {
        for spec in [
            PartitionSpec::BySize { tau: 42 },
            PartitionSpec::External { id: 7 },
        ] {
            assert_eq!(spec_from_image(spec_to_image(&spec)), spec);
        }
    }

    #[test]
    fn observation_mapping_round_trips() {
        let obs = Observation {
            features: QueryFeatures {
                rows: 12_800,
                constraints: 3,
                repeat_bound: 1,
                tau: 133,
            },
            strategy: Strategy::SketchRefine,
            cost: Duration::from_micros(1234),
        };
        let back = observation_from_image(&observation_to_image(&obs));
        assert_eq!(back.features, obs.features);
        assert_eq!(back.strategy, obs.strategy);
        assert_eq!(back.cost, obs.cost);
    }
}
