//! Semantic validation of PaQL queries against a table schema.
//!
//! Checks performed (beyond what the parser enforces syntactically):
//!
//! * every attribute referenced anywhere exists in the schema;
//! * aggregated attributes are numeric;
//! * global predicates stay within the linear fragment the paper's
//!   evaluation supports: `AVG` only compares against constants, `<>` is
//!   rejected, and strict `<`/`>` are rejected at the package level
//!   (they have no faithful ILP encoding over the reals);
//! * the objective is a linear aggregate (`AVG` objectives are ratios —
//!   rejected);
//! * at least one side of every comparison involves the package.

use paq_relational::expr::CmpOp;
use paq_relational::{Expr, Schema};

use crate::ast::{AggExpr, AggTerm, GlobalPredicate, PackageQuery};
use crate::error::{PaqlError, PaqlResult};

/// Validate `query` against `schema`. Returns `Ok(())` when the query
/// is translatable.
pub fn validate(query: &PackageQuery, schema: &Schema) -> PaqlResult<()> {
    if let Some(w) = &query.where_clause {
        check_scalar_expr(w, schema, "WHERE clause")?;
    }
    for (i, pred) in query.such_that.iter().enumerate() {
        let ctx = format!("SUCH THAT predicate #{}", i + 1);
        match pred {
            GlobalPredicate::Between { agg, lo, hi } => {
                check_agg(agg, schema, &ctx)?;
                if matches!(agg, AggExpr::Avg(_)) && lo > hi {
                    return Err(PaqlError::Semantic(format!("{ctx}: empty AVG range")));
                }
            }
            GlobalPredicate::Cmp { lhs, op, rhs } => {
                if *op == CmpOp::Ne {
                    return Err(PaqlError::Semantic(format!(
                        "{ctx}: <> is not expressible as a linear constraint"
                    )));
                }
                if matches!(op, CmpOp::Lt | CmpOp::Gt) {
                    return Err(PaqlError::Semantic(format!(
                        "{ctx}: strict {} has no ILP encoding over continuous \
                         aggregates; use {} instead",
                        op.symbol(),
                        if *op == CmpOp::Lt { "<=" } else { ">=" },
                    )));
                }
                let mut saw_agg = false;
                for side in [lhs, rhs] {
                    if let AggTerm::Agg(a) = side {
                        saw_agg = true;
                        check_agg(a, schema, &ctx)?;
                    }
                }
                if !saw_agg {
                    // Constant ⊙ constant is legal (it is just checked at
                    // translation) but deserves no further checks.
                }
                // AVG may only face a constant (the linearization needs it).
                let avg_lhs = matches!(lhs, AggTerm::Agg(AggExpr::Avg(_)));
                let avg_rhs = matches!(rhs, AggTerm::Agg(AggExpr::Avg(_)));
                if (avg_lhs && !matches!(rhs, AggTerm::Const(_)))
                    || (avg_rhs && !matches!(lhs, AggTerm::Const(_)))
                {
                    return Err(PaqlError::Semantic(format!(
                        "{ctx}: AVG can only be compared against a constant \
                         (the linearization Σ(attr−v)·x needs the constant v)"
                    )));
                }
            }
        }
    }
    if let Some(obj) = &query.objective {
        if matches!(obj.agg, AggExpr::Avg(_)) {
            return Err(PaqlError::Semantic(
                "AVG objectives are ratios of linear functions and are not \
                 supported (the paper restricts objectives to linear functions)"
                    .into(),
            ));
        }
        check_agg(&obj.agg, schema, "objective clause")?;
    }
    Ok(())
}

fn check_agg(agg: &AggExpr, schema: &Schema, ctx: &str) -> PaqlResult<()> {
    if let Some(attr) = agg.attribute() {
        check_numeric_attr(attr, schema, ctx)?;
    }
    match agg {
        AggExpr::CountWhere(f) | AggExpr::SumWhere(_, f) => {
            check_scalar_expr(f, schema, ctx)?;
        }
        _ => {}
    }
    Ok(())
}

fn check_numeric_attr(attr: &str, schema: &Schema, ctx: &str) -> PaqlResult<()> {
    let col = schema
        .column(attr)
        .map_err(|_| PaqlError::Semantic(format!("{ctx}: unknown attribute {attr:?}")))?;
    if !col.ty.is_numeric() {
        return Err(PaqlError::Semantic(format!(
            "{ctx}: attribute {attr:?} has type {} but aggregation requires a numeric type",
            col.ty
        )));
    }
    Ok(())
}

fn check_scalar_expr(e: &Expr, schema: &Schema, ctx: &str) -> PaqlResult<()> {
    for col in e.referenced_columns() {
        if !schema.contains(&col) {
            return Err(PaqlError::Semantic(format!(
                "{ctx}: unknown attribute {col:?}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_paql;
    use paq_relational::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Str),
            ("kcal", DataType::Float),
            ("fat", DataType::Float),
        ])
    }

    fn check(q: &str) -> PaqlResult<()> {
        validate(&parse_paql(q).unwrap(), &schema())
    }

    #[test]
    fn valid_query_passes() {
        check(
            "SELECT PACKAGE(R) AS P FROM R WHERE R.kcal > 0 \
             SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 1 AND 2 \
             MINIMIZE SUM(P.fat)",
        )
        .unwrap();
    }

    #[test]
    fn unknown_attribute_in_where() {
        let err = check("SELECT PACKAGE(R) AS P FROM R WHERE R.missing > 0").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn unknown_attribute_in_such_that() {
        let err = check("SELECT PACKAGE(R) AS P FROM R SUCH THAT SUM(P.nope) <= 1").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn non_numeric_aggregate_rejected() {
        let err = check("SELECT PACKAGE(R) AS P FROM R SUCH THAT SUM(P.name) <= 1").unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn strict_inequality_rejected_at_package_level() {
        let err = check("SELECT PACKAGE(R) AS P FROM R SUCH THAT SUM(P.kcal) < 5").unwrap_err();
        assert!(err.to_string().contains("strict"));
    }

    #[test]
    fn not_equal_rejected() {
        let err = check("SELECT PACKAGE(R) AS P FROM R SUCH THAT COUNT(P.*) <> 3").unwrap_err();
        assert!(err.to_string().contains("linear"));
    }

    #[test]
    fn avg_vs_aggregate_rejected() {
        let err =
            check("SELECT PACKAGE(R) AS P FROM R SUCH THAT AVG(P.kcal) <= SUM(P.fat)").unwrap_err();
        assert!(err.to_string().contains("AVG"));
    }

    #[test]
    fn avg_vs_constant_allowed_either_side() {
        check("SELECT PACKAGE(R) AS P FROM R SUCH THAT AVG(P.kcal) <= 2").unwrap();
        check("SELECT PACKAGE(R) AS P FROM R SUCH THAT 2 >= AVG(P.kcal)").unwrap();
    }

    #[test]
    fn avg_objective_rejected() {
        let err = check("SELECT PACKAGE(R) AS P FROM R MINIMIZE AVG(P.kcal)").unwrap_err();
        assert!(err.to_string().contains("AVG objectives"));
    }

    #[test]
    fn subquery_filter_attributes_checked() {
        let err = check(
            "SELECT PACKAGE(R) AS P FROM R SUCH THAT \
             (SELECT COUNT(*) FROM P WHERE P.ghost > 0) >= 1",
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn count_objective_allowed() {
        check("SELECT PACKAGE(R) AS P FROM R SUCH THAT SUM(P.kcal) <= 5 MAXIMIZE COUNT(P.*)")
            .unwrap();
    }
}
