#![warn(missing_docs)]

//! # paq-lang — PaQL, the Package Query Language
//!
//! PaQL (§2.1 of the paper) extends SQL with package semantics:
//!
//! ```sql
//! SELECT PACKAGE(R) AS P
//! FROM   Recipes R REPEAT 0
//! WHERE  R.gluten = 'free'
//! SUCH THAT COUNT(P.*) = 3
//!       AND SUM(P.kcal) BETWEEN 2.0 AND 2.5
//! MINIMIZE SUM(P.saturated_fat)
//! ```
//!
//! This crate provides:
//! * [`ast`] — the abstract syntax tree ([`PackageQuery`] et al.) with a
//!   pretty-printer that regenerates valid PaQL text;
//! * [`lexer`] / [`parser`] — a hand-written tokenizer and
//!   recursive-descent parser for the full grammar of Appendix A.4;
//! * [`builder`] — a fluent programmatic constructor ([`Paql`]) that
//!   yields the same AST as the parser;
//! * [`mod@validate`] — semantic checks against a table schema (attributes
//!   exist and are numeric where required, linearity restrictions, …);
//! * [`mod@translate`] — the PaQL → ILP translation rules of §3.1, producing
//!   a [`paq_solver::Model`] plus the variable↔tuple mapping;
//! * [`reduction`] — the constructive ILP → PaQL reduction from the
//!   proof of Theorem 1 (used to property-test expressiveness).

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod reduction;
pub mod translate;
pub mod validate;

pub use ast::{AggExpr, AggTerm, GlobalPredicate, Objective, ObjectiveSense, PackageQuery};
pub use builder::{Paql, PaqlBuilder};
pub use error::{PaqlError, PaqlResult};
pub use parser::parse_paql;
pub use translate::{
    base_relation_rows, linear_system, translate, translate_over, LinearRow, LinearSystem,
    Translation,
};
pub use validate::validate;
