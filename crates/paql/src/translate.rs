//! PaQL → ILP translation (§3.1 of the paper).
//!
//! Given a validated [`PackageQuery`] and its input [`Table`], produce a
//! [`paq_solver::Model`] with one nonnegative integer variable `x_i` per
//! tuple of the *base relation* (the tuples satisfying the `WHERE`
//! clause — rule 2's variable elimination), plus:
//!
//! 1. **Repetition constraint** (rule 1): `REPEAT K ⇒ 0 ≤ x_i ≤ K+1`.
//! 2. **Global predicates** (rule 3): each `f(P) ⊙ v` becomes a linear
//!    row; `COUNT → Σx_i`, `SUM(attr) → Σ attr_i·x_i`,
//!    `AVG(attr) ⊙ v → Σ(attr_i − v)·x_i ⊙ 0`, and subquery counts use
//!    per-tuple indicator coefficients.
//! 3. **Objective** (rule 4): `MINIMIZE/MAXIMIZE f(P)`, or the vacuous
//!    `max Σ 0·x_i` when absent.

use paq_relational::expr::CmpOp;
use paq_relational::Table;
use paq_solver::{Model, Sense, VarId};

use crate::ast::{AggExpr, AggTerm, GlobalPredicate, ObjectiveSense, PackageQuery};
use crate::error::{PaqlError, PaqlResult};
use crate::validate::validate;

/// A translated query: the ILP model plus the variable↔tuple mapping.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The ILP model (one integer variable per base-relation tuple).
    pub model: Model,
    /// `tuple_of_var[v]` is the row index (in the input table) of the
    /// tuple that variable `v` selects.
    pub tuple_of_var: Vec<usize>,
}

impl Translation {
    /// Decode a solver assignment into `(tuple_index, multiplicity)`
    /// pairs — the package contents.
    pub fn decode(&self, values: &[f64]) -> Vec<(usize, u64)> {
        self.tuple_of_var
            .iter()
            .zip(values)
            .filter_map(|(&tuple, &v)| {
                let mult = v.round() as i64;
                (mult > 0).then_some((tuple, mult as u64))
            })
            .collect()
    }
}

/// Translate `query` over `table` into an ILP model.
///
/// Validation runs first; the returned model is ready for
/// [`paq_solver::MilpSolver::solve`].
pub fn translate(query: &PackageQuery, table: &Table) -> PaqlResult<Translation> {
    translate_over(query, table, None)
}

/// Translate `query` over a subset of `table` rows (`None` = all rows).
///
/// The subset form is what SKETCHREFINE uses to build per-group refine
/// models without materializing group tables.
pub fn translate_over(
    query: &PackageQuery,
    table: &Table,
    rows: Option<&[usize]>,
) -> PaqlResult<Translation> {
    validate(query, table.schema())?;

    // Rule 2: base relation — keep only tuples satisfying the WHERE
    // clause; everything else is eliminated from the problem.
    let candidate_rows: Vec<usize> = match rows {
        Some(r) => r.to_vec(),
        None => (0..table.num_rows()).collect(),
    };
    let base_rows = base_relation_rows(query, table, &candidate_rows)?;
    let ls = linear_system(query, table, &base_rows)?;
    let model = ls.to_model();
    Ok(Translation {
        model,
        tuple_of_var: base_rows,
    })
}

/// Row indices of `candidates` surviving the query's base predicate
/// (rule 2 — the base relation `R_β`).
pub fn base_relation_rows(
    query: &PackageQuery,
    table: &Table,
    candidates: &[usize],
) -> PaqlResult<Vec<usize>> {
    match &query.where_clause {
        None => Ok(candidates.to_vec()),
        Some(pred) => {
            let mut keep = Vec::new();
            for &i in candidates {
                if pred.eval_bool(table, i)?.unwrap_or(false) {
                    keep.push(i);
                }
            }
            Ok(keep)
        }
    }
}

/// One linear constraint row `lo ≤ Σ coefs·x ≤ hi` over an explicit
/// tuple set.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRow {
    /// Per-tuple coefficients, parallel to the `rows` argument of
    /// [`linear_system`].
    pub coefs: Vec<f64>,
    /// Row lower bound (`-inf` for pure ≤).
    pub lo: f64,
    /// Row upper bound (`+inf` for pure ≥).
    pub hi: f64,
}

/// The raw linear system of a query over an explicit tuple set — the
/// building block SKETCHREFINE uses to assemble sketch and refine ILPs
/// with shifted bounds (§4.2): the contribution of already-decided
/// groups is a constant that simply moves each row's `lo`/`hi`.
#[derive(Debug, Clone)]
pub struct LinearSystem {
    /// Constraint rows (a BETWEEN over AVG expands to two rows).
    pub rows: Vec<LinearRow>,
    /// Objective coefficients, parallel to the tuple set.
    pub objective: Vec<f64>,
    /// Optimization sense (vacuous queries get `Maximize` over zeros).
    pub sense: Sense,
    /// Per-variable upper bound from the repetition constraint
    /// (`K + 1`, or `+inf` without `REPEAT`).
    pub var_ub: f64,
}

impl LinearSystem {
    /// Assemble a solver model: one integer variable per tuple with the
    /// repetition bound, all rows, and the objective.
    pub fn to_model(&self) -> Model {
        let mut model = Model::new();
        let vars: Vec<VarId> = self
            .objective
            .iter()
            .map(|&c| model.add_int_var(0.0, self.var_ub, c))
            .collect();
        for row in &self.rows {
            model.add_range(
                vars.iter()
                    .copied()
                    .zip(row.coefs.iter().copied())
                    .collect(),
                row.lo,
                row.hi,
            );
        }
        model.set_sense(self.sense);
        model
    }
}

/// Extract the query's linear system over the tuples at `rows`.
///
/// The base (`WHERE`) predicate is **not** applied here — callers
/// pre-filter with [`base_relation_rows`]; this lets SKETCHREFINE
/// evaluate the same system over representative relations whose
/// categorical attributes do not exist.
pub fn linear_system(
    query: &PackageQuery,
    table: &Table,
    rows: &[usize],
) -> PaqlResult<LinearSystem> {
    let var_ub = query
        .max_multiplicity()
        .map(|m| m as f64)
        .unwrap_or(f64::INFINITY);

    let mut out_rows = Vec::new();
    for pred in &query.such_that {
        match pred {
            GlobalPredicate::Between { agg, lo, hi } => match agg {
                AggExpr::Avg(attr) => {
                    // lo ≤ AVG ≤ hi ⇒ Σ(a_i − lo)x ≥ 0 and Σ(a_i − hi)x ≤ 0.
                    out_rows.push(LinearRow {
                        coefs: avg_coefs(table, rows, attr, *lo)?,
                        lo: 0.0,
                        hi: f64::INFINITY,
                    });
                    out_rows.push(LinearRow {
                        coefs: avg_coefs(table, rows, attr, *hi)?,
                        lo: f64::NEG_INFINITY,
                        hi: 0.0,
                    });
                }
                _ => out_rows.push(LinearRow {
                    coefs: agg_coefs(table, rows, agg)?,
                    lo: *lo,
                    hi: *hi,
                }),
            },
            GlobalPredicate::Cmp { lhs, op, rhs } => {
                out_rows.push(cmp_row(table, rows, lhs, *op, rhs)?);
            }
        }
    }

    let (objective, sense) = match &query.objective {
        Some(obj) => {
            let coefs = agg_coefs(table, rows, &obj.agg)?;
            let sense = match obj.sense {
                ObjectiveSense::Minimize => Sense::Minimize,
                ObjectiveSense::Maximize => Sense::Maximize,
            };
            (coefs, sense)
        }
        // Vacuous objective max Σ 0·x_i (§3.1 rule 4).
        None => (vec![0.0; rows.len()], Sense::Maximize),
    };

    Ok(LinearSystem {
        rows: out_rows,
        objective,
        sense,
        var_ub,
    })
}

/// Per-tuple linear coefficients of an aggregate (rule 3).
fn agg_coefs(table: &Table, rows: &[usize], agg: &AggExpr) -> PaqlResult<Vec<f64>> {
    let mut out = Vec::with_capacity(rows.len());
    match agg {
        AggExpr::Count => out.resize(rows.len(), 1.0),
        AggExpr::Sum(attr) => {
            let col = table.column(attr)?;
            for &row in rows {
                // SQL SUM skips NULLs ⇒ a NULL cell contributes 0.
                out.push(col.f64_at(row).unwrap_or(0.0));
            }
        }
        AggExpr::CountWhere(filter) => {
            for &row in rows {
                let hit = filter.eval_bool(table, row)?.unwrap_or(false);
                out.push(if hit { 1.0 } else { 0.0 });
            }
        }
        AggExpr::SumWhere(attr, filter) => {
            let col = table.column(attr)?;
            for &row in rows {
                let hit = filter.eval_bool(table, row)?.unwrap_or(false);
                out.push(if hit {
                    col.f64_at(row).unwrap_or(0.0)
                } else {
                    0.0
                });
            }
        }
        AggExpr::Avg(_) => {
            return Err(PaqlError::Semantic(
                "AVG reached coefficient generation without a comparison constant \
                 (validation should have rejected this)"
                    .into(),
            ))
        }
    }
    Ok(out)
}

/// Coefficients for the AVG linearization `Σ (attr_i − v) x_i`.
fn avg_coefs(table: &Table, rows: &[usize], attr: &str, v: f64) -> PaqlResult<Vec<f64>> {
    let col = table.column(attr)?;
    Ok(rows
        .iter()
        .map(|&row| col.f64_at(row).unwrap_or(0.0) - v)
        .collect())
}

/// Build the row for `lhs ⊙ rhs` where each side is an aggregate or
/// constant.
fn cmp_row(
    table: &Table,
    rows: &[usize],
    lhs: &AggTerm,
    op: CmpOp,
    rhs: &AggTerm,
) -> PaqlResult<LinearRow> {
    // AVG ⊙ const gets its own linearization.
    if let (AggTerm::Agg(AggExpr::Avg(attr)), AggTerm::Const(v)) = (lhs, rhs) {
        return Ok(bounded_row(avg_coefs(table, rows, attr, *v)?, op, 0.0));
    }
    if let (AggTerm::Const(v), AggTerm::Agg(AggExpr::Avg(attr))) = (lhs, rhs) {
        // v ⊙ AVG ≡ AVG ⊙⁻¹ v.
        return Ok(bounded_row(
            avg_coefs(table, rows, attr, *v)?,
            flip(op),
            0.0,
        ));
    }

    // General linear form: (lhs_lin − rhs_lin)·x ⊙ (rhs_const − lhs_const).
    let mut coefs = vec![0.0; rows.len()];
    let mut rhs_const = 0.0;
    accumulate(table, rows, lhs, 1.0, &mut coefs, &mut rhs_const)?;
    accumulate(table, rows, rhs, -1.0, &mut coefs, &mut rhs_const)?;
    Ok(bounded_row(coefs, op, -rhs_const))
}

/// Add `sign ×` the term's linear part into `coefs` and its constant
/// part into `constant`.
fn accumulate(
    table: &Table,
    rows: &[usize],
    term: &AggTerm,
    sign: f64,
    coefs: &mut [f64],
    constant: &mut f64,
) -> PaqlResult<()> {
    match term {
        AggTerm::Const(c) => *constant += sign * c,
        AggTerm::Agg(agg) => {
            for (slot, c) in agg_coefs(table, rows, agg)?.into_iter().enumerate() {
                coefs[slot] += sign * c;
            }
        }
    }
    Ok(())
}

fn bounded_row(coefs: Vec<f64>, op: CmpOp, bound: f64) -> LinearRow {
    match op {
        CmpOp::Le | CmpOp::Lt => LinearRow {
            coefs,
            lo: f64::NEG_INFINITY,
            hi: bound,
        },
        CmpOp::Ge | CmpOp::Gt => LinearRow {
            coefs,
            lo: bound,
            hi: f64::INFINITY,
        },
        CmpOp::Eq => LinearRow {
            coefs,
            lo: bound,
            hi: bound,
        },
        CmpOp::Ne => unreachable!("validation rejects <> in global predicates"),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_paql;
    use paq_relational::{DataType, Schema, Value};
    use paq_solver::{MilpSolver, SolveOutcome, SolverConfig};

    fn recipes() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("name", DataType::Str),
            ("gluten", DataType::Str),
            ("kcal", DataType::Float),
            ("saturated_fat", DataType::Float),
            ("carbs", DataType::Float),
            ("protein", DataType::Float),
        ]));
        let rows: Vec<(&str, &str, f64, f64, f64, f64)> = vec![
            ("oats", "free", 0.8, 1.0, 30.0, 5.0),
            ("bread", "full", 0.9, 2.0, 40.0, 8.0),
            ("salad", "free", 0.5, 0.2, 5.0, 2.0),
            ("steak", "free", 1.1, 5.0, 0.0, 30.0),
            ("rice", "free", 0.7, 0.4, 35.0, 4.0),
            ("tofu", "free", 0.6, 0.6, 3.0, 12.0),
        ];
        for (n, g, k, f, c, p) in rows {
            t.push_row(vec![
                n.into(),
                g.into(),
                k.into(),
                f.into(),
                c.into(),
                p.into(),
            ])
            .unwrap();
        }
        t
    }

    fn solve(query: &str, table: &Table) -> (Translation, SolveOutcome) {
        let q = parse_paql(query).unwrap();
        let tr = translate(&q, table).unwrap();
        let out = MilpSolver::new(SolverConfig::default())
            .solve(&tr.model)
            .outcome;
        (tr, out)
    }

    #[test]
    fn running_example_end_to_end() {
        let table = recipes();
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             WHERE R.gluten = 'free' \
             SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 \
             MINIMIZE SUM(P.saturated_fat)",
            &table,
        );
        // Bread (gluten=full) must be eliminated: 5 variables remain.
        assert_eq!(tr.tuple_of_var.len(), 5);
        assert!(!tr.tuple_of_var.contains(&1));
        let sol = match out {
            SolveOutcome::Optimal(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let pkg = tr.decode(&sol.values);
        let total: u64 = pkg.iter().map(|(_, m)| m).sum();
        assert_eq!(total, 3);
        // Feasibility of the package against the raw data.
        let kcal: f64 = pkg
            .iter()
            .map(|(t, m)| table.value(*t, "kcal").unwrap().as_f64().unwrap() * *m as f64)
            .sum();
        assert!((2.0..=2.5).contains(&kcal), "kcal {kcal}");
        // Optimal fat: salad (0.2) + rice (0.4) + tofu (0.6) = 1.2 at
        // kcal 1.8 < 2.0 — infeasible; the true optimum must include a
        // heavier meal. Verify optimality by brute force.
        let mut best = f64::INFINITY;
        let idx = [0usize, 2, 3, 4, 5];
        for a in 0..idx.len() {
            for b in a + 1..idx.len() {
                for c in b + 1..idx.len() {
                    let trio = [idx[a], idx[b], idx[c]];
                    let kc: f64 = trio
                        .iter()
                        .map(|&t| table.value(t, "kcal").unwrap().as_f64().unwrap())
                        .sum();
                    if (2.0..=2.5).contains(&kc) {
                        let fat: f64 = trio
                            .iter()
                            .map(|&t| table.value(t, "saturated_fat").unwrap().as_f64().unwrap())
                            .sum();
                        best = best.min(fat);
                    }
                }
            }
        }
        assert!(
            (sol.objective - best).abs() < 1e-9,
            "{} vs {best}",
            sol.objective
        );
    }

    #[test]
    fn repeat_bound_controls_multiplicity() {
        let table = recipes();
        // Minimize kcal with exactly 4 tuples, REPEAT 1 (≤2 copies each):
        // two salads (0.5) + two tofu (0.6) = 2.2.
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 1 \
             SUCH THAT COUNT(P.*) = 4 MINIMIZE SUM(P.kcal)",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        assert!((sol.objective - 2.2).abs() < 1e-9);
        let pkg = tr.decode(&sol.values);
        assert!(pkg.iter().all(|(_, m)| *m <= 2));
    }

    #[test]
    fn unlimited_repetition_when_repeat_absent() {
        let table = recipes();
        // Maximize count with kcal budget; only salad (cheapest 0.5)
        // should repeat ⌊5.0 / 0.5⌋ = 10 times.
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R \
             SUCH THAT SUM(P.kcal) <= 5.0 MAXIMIZE COUNT(P.*)",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        assert_eq!(sol.objective.round() as i64, 10);
        let pkg = tr.decode(&sol.values);
        assert_eq!(pkg.len(), 1);
        assert_eq!(pkg[0], (2, 10));
    }

    #[test]
    fn avg_constraint_linearization() {
        let table = recipes();
        // AVG(kcal) ≤ 0.6 with exactly 2 tuples and max protein:
        // candidates with avg ≤ 0.6: pairs summing kcal ≤ 1.2.
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2 AND AVG(P.kcal) <= 0.6 \
             MAXIMIZE SUM(P.protein)",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        let pkg = tr.decode(&sol.values);
        let rows: Vec<usize> = pkg.iter().map(|(t, _)| *t).collect();
        let kcal: f64 = rows
            .iter()
            .map(|&t| table.value(t, "kcal").unwrap().as_f64().unwrap())
            .sum();
        assert!(kcal / 2.0 <= 0.6 + 1e-9);
        // Best qualifying pair: salad+tofu (kcal 1.1, protein 14).
        assert!((sol.objective - 14.0).abs() < 1e-9, "{}", sol.objective);
    }

    #[test]
    fn subquery_count_comparison_from_paper() {
        let table = recipes();
        // #(carbs > 0) ≥ #(protein ≤ 5): the §3.1 indicator encoding.
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 3 AND \
             (SELECT COUNT(*) FROM P WHERE P.carbs > 0) >= \
             (SELECT COUNT(*) FROM P WHERE P.protein <= 5) \
             MINIMIZE SUM(P.saturated_fat)",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        let pkg = tr.decode(&sol.values);
        let carbs = pkg
            .iter()
            .filter(|(t, _)| table.value(*t, "carbs").unwrap().as_f64().unwrap() > 0.0)
            .count();
        let lowp = pkg
            .iter()
            .filter(|(t, _)| table.value(*t, "protein").unwrap().as_f64().unwrap() <= 5.0)
            .count();
        assert!(carbs >= lowp, "carbs {carbs} < low-protein {lowp}");
    }

    #[test]
    fn infeasible_package_query() {
        let table = recipes();
        let (_, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 0.1",
            &table,
        );
        assert_eq!(out, SolveOutcome::Infeasible);
    }

    #[test]
    fn empty_base_relation_infeasible_with_count() {
        let table = recipes();
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R \
             WHERE R.gluten = 'none' SUCH THAT COUNT(P.*) >= 1",
            &table,
        );
        assert_eq!(tr.tuple_of_var.len(), 0);
        assert_eq!(out, SolveOutcome::Infeasible);
    }

    #[test]
    fn empty_package_is_a_valid_answer() {
        let table = recipes();
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             SUCH THAT SUM(P.kcal) <= 10 MINIMIZE SUM(P.kcal)",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        assert_eq!(tr.decode(&sol.values), vec![]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn vacuous_objective_accepts_any_feasible_package() {
        let table = recipes();
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        let pkg = tr.decode(&sol.values);
        assert_eq!(pkg.iter().map(|(_, m)| m).sum::<u64>(), 2);
    }

    #[test]
    fn sum_where_constraint() {
        let table = recipes();
        // Total kcal from high-carb (>20) meals at most 0.8.
        let (tr, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 3 AND \
             (SELECT SUM(kcal) FROM P WHERE carbs > 20) <= 0.8 \
             MINIMIZE SUM(P.saturated_fat)",
            &table,
        );
        let sol = out.solution().unwrap().clone();
        let pkg = tr.decode(&sol.values);
        let high_carb_kcal: f64 = pkg
            .iter()
            .filter(|(t, _)| table.value(*t, "carbs").unwrap().as_f64().unwrap() > 20.0)
            .map(|(t, m)| table.value(*t, "kcal").unwrap().as_f64().unwrap() * *m as f64)
            .sum();
        assert!(high_carb_kcal <= 0.8 + 1e-9);
    }

    #[test]
    fn null_attribute_contributes_zero_to_sum() {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        t.push_row(vec![Value::Float(5.0)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.x)",
        )
        .unwrap();
        let tr = translate(&q, &t).unwrap();
        let out = MilpSolver::new(SolverConfig::default())
            .solve(&tr.model)
            .outcome;
        assert_eq!(out.solution().unwrap().objective, 5.0);
    }

    #[test]
    fn decode_reports_multiplicities() {
        let tr = Translation {
            model: Model::new(),
            tuple_of_var: vec![7, 9, 11],
        };
        assert_eq!(tr.decode(&[2.0, 0.0, 1.0]), vec![(7, 2), (11, 1)]);
    }

    #[test]
    fn constant_only_predicate_is_checked() {
        let table = recipes();
        // 3 <= 2 is always false: translation produces an infeasible
        // constant row caught by presolve.
        let (_, out) = solve(
            "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT 3 <= 2",
            &table,
        );
        assert_eq!(out, SolveOutcome::Infeasible);
    }
}
