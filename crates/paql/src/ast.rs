//! Abstract syntax tree for PaQL queries.
//!
//! The AST mirrors the grammar in Appendix A.4 of the paper, restricted
//! (as the paper's evaluation is) to single-relation queries with linear
//! aggregate functions. Base (`WHERE`) predicates reuse the relational
//! engine's [`Expr`] with alias-qualified column names resolved at parse
//! time.

use std::fmt;

use paq_relational::expr::CmpOp;
use paq_relational::Expr;

/// Aggregate expressions allowed at the package level.
///
/// Each maps to a linear function over the ILP variables (§3.1, rule 3):
/// `COUNT(P.*) → Σ x_i`, `SUM(P.a) → Σ a_i·x_i`, the `WHERE`-filtered
/// subquery forms multiply by an indicator, and `AVG` is linearized
/// against its comparison constant.
#[derive(Debug, Clone, PartialEq)]
pub enum AggExpr {
    /// `COUNT(P.*)`
    Count,
    /// `SUM(P.attr)`
    Sum(String),
    /// `AVG(P.attr)` — only comparable against constants (the
    /// linearization needs the constant).
    Avg(String),
    /// `(SELECT COUNT(*) FROM P WHERE cond)`
    CountWhere(Expr),
    /// `(SELECT SUM(attr) FROM P WHERE cond)`
    SumWhere(String, Expr),
}

impl AggExpr {
    /// Attribute referenced by the aggregate, if any.
    pub fn attribute(&self) -> Option<&str> {
        match self {
            AggExpr::Count | AggExpr::CountWhere(_) => None,
            AggExpr::Sum(a) | AggExpr::Avg(a) | AggExpr::SumWhere(a, _) => Some(a),
        }
    }

    /// All attributes this aggregate touches (including the filter's).
    pub fn referenced_attributes(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(a) = self.attribute() {
            out.push(a.to_owned());
        }
        match self {
            AggExpr::CountWhere(e) | AggExpr::SumWhere(_, e) => {
                out.extend(e.referenced_columns());
            }
            _ => {}
        }
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggExpr::Count => write!(f, "COUNT(P.*)"),
            AggExpr::Sum(a) => write!(f, "SUM(P.{a})"),
            AggExpr::Avg(a) => write!(f, "AVG(P.{a})"),
            AggExpr::CountWhere(e) => write!(f, "(SELECT COUNT(*) FROM P WHERE {e})"),
            AggExpr::SumWhere(a, e) => write!(f, "(SELECT SUM({a}) FROM P WHERE {e})"),
        }
    }
}

/// One side of a global-predicate comparison: an aggregate or a
/// constant.
#[derive(Debug, Clone, PartialEq)]
pub enum AggTerm {
    /// An aggregate over the package.
    Agg(AggExpr),
    /// A numeric literal.
    Const(f64),
}

impl fmt::Display for AggTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggTerm::Agg(a) => write!(f, "{a}"),
            AggTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A global predicate from the `SUCH THAT` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalPredicate {
    /// `lhs ⊙ rhs` with `⊙ ∈ {=, <>, <, <=, >, >=}` (only the linear
    /// subset `=, <=, >=, <, >` survives validation; `<`/`>` are treated
    /// as their closed counterparts over continuous data, as is standard
    /// in the paper's constraint language).
    Cmp {
        /// Left-hand term.
        lhs: AggTerm,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand term.
        rhs: AggTerm,
    },
    /// `agg BETWEEN lo AND hi`.
    Between {
        /// The aggregate being bounded.
        agg: AggExpr,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
}

impl fmt::Display for GlobalPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalPredicate::Cmp { lhs, op, rhs } => {
                write!(f, "{lhs} {} {rhs}", op.symbol())
            }
            GlobalPredicate::Between { agg, lo, hi } => {
                write!(f, "{agg} BETWEEN {lo} AND {hi}")
            }
        }
    }
}

/// Optimization direction of the objective clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// `MINIMIZE`
    Minimize,
    /// `MAXIMIZE`
    Maximize,
}

impl fmt::Display for ObjectiveSense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveSense::Minimize => write!(f, "MINIMIZE"),
            ObjectiveSense::Maximize => write!(f, "MAXIMIZE"),
        }
    }
}

/// The objective clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Direction.
    pub sense: ObjectiveSense,
    /// The aggregate being optimized (must be linear: COUNT/SUM forms).
    pub agg: AggExpr,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.sense, self.agg)
    }
}

/// A parsed PaQL package query (single relation, per §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PackageQuery {
    /// Name bound to the package result (`AS P`).
    pub package_name: String,
    /// Input relation name.
    pub relation: String,
    /// Relation alias used in the query text.
    pub relation_alias: String,
    /// `REPEAT K`: each tuple may appear at most `K + 1` times;
    /// `None` means unlimited repetition.
    pub repeat: Option<u32>,
    /// Base predicate (`WHERE`), with alias qualifiers resolved to bare
    /// column names.
    pub where_clause: Option<Expr>,
    /// Conjunction of global predicates (`SUCH THAT`).
    pub such_that: Vec<GlobalPredicate>,
    /// Optional objective clause.
    pub objective: Option<Objective>,
}

impl PackageQuery {
    /// All attributes referenced by global predicates and the objective
    /// — the *query attributes* used for partitioning coverage (§5.2.3).
    pub fn query_attributes(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.such_that {
            match p {
                GlobalPredicate::Cmp { lhs, rhs, .. } => {
                    for t in [lhs, rhs] {
                        if let AggTerm::Agg(a) = t {
                            out.extend(a.referenced_attributes());
                        }
                    }
                }
                GlobalPredicate::Between { agg, .. } => out.extend(agg.referenced_attributes()),
            }
        }
        if let Some(obj) = &self.objective {
            out.extend(obj.agg.referenced_attributes());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Maximum multiplicity allowed per tuple (`REPEAT K` ⇒ `K + 1`),
    /// or `None` for unlimited.
    pub fn max_multiplicity(&self) -> Option<u64> {
        self.repeat.map(|k| k as u64 + 1)
    }
}

impl fmt::Display for PackageQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SELECT PACKAGE({}) AS {} FROM {} {}",
            self.relation_alias, self.package_name, self.relation, self.relation_alias
        )?;
        if let Some(k) = self.repeat {
            write!(f, " REPEAT {k}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.such_that.is_empty() {
            write!(f, " SUCH THAT ")?;
            for (i, p) in self.such_that.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if let Some(obj) = &self.objective {
            write!(f, " {obj}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example() -> PackageQuery {
        PackageQuery {
            package_name: "P".into(),
            relation: "Recipes".into(),
            relation_alias: "R".into(),
            repeat: Some(0),
            where_clause: Some(Expr::col("gluten").eq(Expr::lit("free"))),
            such_that: vec![
                GlobalPredicate::Cmp {
                    lhs: AggTerm::Agg(AggExpr::Count),
                    op: CmpOp::Eq,
                    rhs: AggTerm::Const(3.0),
                },
                GlobalPredicate::Between {
                    agg: AggExpr::Sum("kcal".into()),
                    lo: 2.0,
                    hi: 2.5,
                },
            ],
            objective: Some(Objective {
                sense: ObjectiveSense::Minimize,
                agg: AggExpr::Sum("saturated_fat".into()),
            }),
        }
    }

    #[test]
    fn display_regenerates_paql() {
        let q = running_example();
        let text = q.to_string();
        assert!(text.starts_with("SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0"));
        assert!(text.contains("WHERE gluten = 'free'"));
        assert!(text.contains("COUNT(P.*) = 3"));
        assert!(text.contains("SUM(P.kcal) BETWEEN 2 AND 2.5"));
        assert!(text.ends_with("MINIMIZE SUM(P.saturated_fat)"));
    }

    #[test]
    fn query_attributes_cover_objective_and_predicates() {
        let q = running_example();
        assert_eq!(q.query_attributes(), vec!["kcal", "saturated_fat"]);
    }

    #[test]
    fn query_attributes_include_subquery_filters() {
        let mut q = running_example();
        q.such_that.push(GlobalPredicate::Cmp {
            lhs: AggTerm::Agg(AggExpr::CountWhere(Expr::col("carbs").gt(Expr::lit(0.0)))),
            op: CmpOp::Ge,
            rhs: AggTerm::Agg(AggExpr::CountWhere(Expr::col("protein").le(Expr::lit(5.0)))),
        });
        let attrs = q.query_attributes();
        assert!(attrs.contains(&"carbs".to_string()));
        assert!(attrs.contains(&"protein".to_string()));
    }

    #[test]
    fn max_multiplicity_semantics() {
        let mut q = running_example();
        assert_eq!(q.max_multiplicity(), Some(1), "REPEAT 0 = no repeats");
        q.repeat = Some(2);
        assert_eq!(q.max_multiplicity(), Some(3));
        q.repeat = None;
        assert_eq!(q.max_multiplicity(), None);
    }

    #[test]
    fn agg_display_forms() {
        assert_eq!(AggExpr::Count.to_string(), "COUNT(P.*)");
        assert_eq!(AggExpr::Sum("a".into()).to_string(), "SUM(P.a)");
        assert_eq!(
            AggExpr::CountWhere(Expr::col("carbs").gt(Expr::lit(0.0))).to_string(),
            "(SELECT COUNT(*) FROM P WHERE carbs > 0)"
        );
    }
}
