//! ILP → PaQL reduction (Theorem 1 of the paper).
//!
//! The expressiveness proof constructs, for any integer linear program
//!
//! ```text
//! max  Σ a_i x_i
//! s.t. Σ b_ij x_i ≤ c_j   for j = 1..k
//!      x_i ≥ 0, x_i ∈ ℤ
//! ```
//!
//! a database instance `R(attr_obj, attr_1, …, attr_k)` with one tuple
//! per variable (`t_i = (a_i, b_i1, …, b_ik)` — the i-th column of the
//! constraint matrix) and the PaQL query
//!
//! ```sql
//! SELECT PACKAGE(R) AS P FROM R
//! SUCH THAT SUM(P.attr_j) <= c_j  -- for each j
//! MAXIMIZE SUM(P.attr_obj)
//! ```
//!
//! such that optimal packages correspond exactly to optimal ILP
//! solutions. This module implements that construction; the tests (and
//! the crate's property tests) verify the equivalence by solving both
//! sides.

use paq_relational::{ColumnDef, DataType, Schema, Table, Value};

use crate::ast::{AggExpr, AggTerm, GlobalPredicate, Objective, ObjectiveSense, PackageQuery};
use crate::error::{PaqlError, PaqlResult};
use paq_relational::expr::CmpOp;

/// A canonical-form ILP instance: `max a·x s.t. B x ≤ c, x ≥ 0, x ∈ ℤ`.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpInstance {
    /// Objective coefficients `a_i` (one per variable).
    pub objective: Vec<f64>,
    /// Constraints as `(row coefficients b_·j, rhs c_j)`; every row must
    /// have exactly `objective.len()` coefficients.
    pub constraints: Vec<(Vec<f64>, f64)>,
}

impl IlpInstance {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Build the equivalent [`paq_solver::Model`] directly (for
    /// cross-checking the reduction).
    pub fn to_model(&self) -> paq_solver::Model {
        let mut m = paq_solver::Model::new();
        let vars: Vec<paq_solver::VarId> = self
            .objective
            .iter()
            .map(|&a| m.add_int_var(0.0, f64::INFINITY, a))
            .collect();
        for (row, rhs) in &self.constraints {
            m.add_le(
                vars.iter().copied().zip(row.iter().copied()).collect(),
                *rhs,
            );
        }
        m.set_sense(paq_solver::Sense::Maximize);
        m
    }
}

/// Apply the Theorem 1 construction: produce the database instance and
/// the PaQL query whose optimal packages are exactly the ILP's optimal
/// solutions.
pub fn ilp_to_paql(ilp: &IlpInstance) -> PaqlResult<(Table, PackageQuery)> {
    let n = ilp.num_vars();
    let k = ilp.constraints.len();
    for (j, (row, _)) in ilp.constraints.iter().enumerate() {
        if row.len() != n {
            return Err(PaqlError::Semantic(format!(
                "constraint {j} has {} coefficients for {n} variables",
                row.len()
            )));
        }
    }

    // Schema R(attr_obj, attr_1, …, attr_k).
    let mut cols = vec![ColumnDef::new("attr_obj", DataType::Float)];
    for j in 0..k {
        cols.push(ColumnDef::new(format!("attr_{}", j + 1), DataType::Float));
    }
    let schema = Schema::new(cols);

    // Tuple t_i = the i-th column of the constraint matrix plus a_i.
    let mut table = Table::with_capacity(schema, n);
    for i in 0..n {
        let mut row: Vec<Value> = Vec::with_capacity(k + 1);
        row.push(Value::Float(ilp.objective[i]));
        for (coefs, _) in &ilp.constraints {
            row.push(Value::Float(coefs[i]));
        }
        table.push_row(row)?;
    }

    // SUCH THAT SUM(P.attr_j) ≤ c_j for every j; MAXIMIZE SUM(P.attr_obj).
    let such_that = ilp
        .constraints
        .iter()
        .enumerate()
        .map(|(j, (_, c))| GlobalPredicate::Cmp {
            lhs: AggTerm::Agg(AggExpr::Sum(format!("attr_{}", j + 1))),
            op: CmpOp::Le,
            rhs: AggTerm::Const(*c),
        })
        .collect();

    let query = PackageQuery {
        package_name: "P".into(),
        relation: "R".into(),
        relation_alias: "R".into(),
        repeat: None, // x_i ≥ 0 unbounded ⇒ unlimited repetition
        where_clause: None,
        such_that,
        objective: Some(Objective {
            sense: ObjectiveSense::Maximize,
            agg: AggExpr::Sum("attr_obj".into()),
        }),
    };
    Ok((table, query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use paq_solver::{MilpSolver, SolveOutcome, SolverConfig};

    fn solve_model(m: &paq_solver::Model) -> SolveOutcome {
        MilpSolver::new(SolverConfig::default()).solve(m).outcome
    }

    fn objective_of(out: &SolveOutcome) -> f64 {
        out.solution().expect("expected a solution").objective
    }

    #[test]
    fn reduction_preserves_optimum_on_knapsack() {
        // max 7x1 + 4x2 + 3x3 s.t. 3x1+2x2+x3 ≤ 10, x1 ≤ 2 (as a row).
        let ilp = IlpInstance {
            objective: vec![7.0, 4.0, 3.0],
            constraints: vec![(vec![3.0, 2.0, 1.0], 10.0), (vec![1.0, 0.0, 0.0], 2.0)],
        };
        let direct = objective_of(&solve_model(&ilp.to_model()));
        let (table, query) = ilp_to_paql(&ilp).unwrap();
        let tr = translate(&query, &table).unwrap();
        let via_paql = objective_of(&solve_model(&tr.model));
        assert_eq!(direct, via_paql);
        // Sanity: x3 has the best density (3 per unit weight) and no
        // cap, so 10 copies of x3 exhaust the budget → objective 30.
        assert_eq!(direct, 30.0);
    }

    #[test]
    fn reduction_table_shape_matches_theorem() {
        let ilp = IlpInstance {
            objective: vec![1.0, 2.0],
            constraints: vec![(vec![3.0, 4.0], 5.0)],
        };
        let (table, query) = ilp_to_paql(&ilp).unwrap();
        assert_eq!(table.schema().names(), vec!["attr_obj", "attr_1"]);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.value(1, "attr_obj").unwrap(), Value::Float(2.0));
        assert_eq!(table.value(1, "attr_1").unwrap(), Value::Float(4.0));
        assert_eq!(query.such_that.len(), 1);
        assert_eq!(query.repeat, None);
    }

    #[test]
    fn mismatched_row_length_rejected() {
        let ilp = IlpInstance {
            objective: vec![1.0, 2.0],
            constraints: vec![(vec![3.0], 5.0)],
        };
        assert!(ilp_to_paql(&ilp).is_err());
    }

    #[test]
    fn zero_rhs_forces_empty_package() {
        // max x with x ≤ 0 → optimum 0 (empty package).
        let ilp = IlpInstance {
            objective: vec![1.0],
            constraints: vec![(vec![1.0], 0.0)],
        };
        let (table, query) = ilp_to_paql(&ilp).unwrap();
        let tr = translate(&query, &table).unwrap();
        assert_eq!(objective_of(&solve_model(&tr.model)), 0.0);
    }

    #[test]
    fn pseudo_random_equivalence_sweep() {
        // Deterministic xorshift-driven instances with positive weights
        // (guaranteeing boundedness), solved both directly and via the
        // reduction.
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..25 {
            let n = 2 + (next() % 4) as usize;
            let k = 1 + (next() % 3) as usize;
            let objective: Vec<f64> = (0..n).map(|_| (next() % 9) as f64).collect();
            let constraints: Vec<(Vec<f64>, f64)> = (0..k)
                .map(|_| {
                    let row: Vec<f64> = (0..n).map(|_| 1.0 + (next() % 5) as f64).collect();
                    let rhs = (next() % 20) as f64;
                    (row, rhs)
                })
                .collect();
            let ilp = IlpInstance {
                objective,
                constraints,
            };
            let direct = objective_of(&solve_model(&ilp.to_model()));
            let (table, query) = ilp_to_paql(&ilp).unwrap();
            let tr = translate(&query, &table).unwrap();
            let via = objective_of(&solve_model(&tr.model));
            assert!(
                (direct - via).abs() < 1e-6,
                "trial {trial}: direct {direct} vs via-PaQL {via}"
            );
        }
    }
}
