//! Recursive-descent parser for PaQL (grammar of Appendix A.4).

use paq_relational::expr::CmpOp;
use paq_relational::{Expr, Value};

use crate::ast::{AggExpr, AggTerm, GlobalPredicate, Objective, ObjectiveSense, PackageQuery};
use crate::error::{PaqlError, PaqlResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a PaQL query string into a [`PackageQuery`].
pub fn parse_paql(input: &str) -> PaqlResult<PackageQuery> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> PaqlResult<T> {
        Err(PaqlError::Parse {
            position: self.position(),
            message: message.into(),
        })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PaqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.error(format!("expected keyword {kw}, found {:?}", self.peek()))
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> PaqlResult<()> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> PaqlResult<()> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            self.error(format!("unexpected trailing input: {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> PaqlResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn number(&mut self, what: &str) -> PaqlResult<f64> {
        let negative = *self.peek() == TokenKind::Minus;
        if negative {
            self.advance();
        }
        match *self.peek() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(if negative { -n } else { n })
            }
            ref other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    // ------------------------------------------------------------------
    // query := SELECT PACKAGE '(' alias ')' [AS] name
    //          FROM rel [AS] alias [REPEAT k]
    //          [WHERE expr] [SUCH THAT preds] [(MINIMIZE|MAXIMIZE) agg]
    // ------------------------------------------------------------------
    fn query(&mut self) -> PaqlResult<PackageQuery> {
        self.expect_kw("SELECT")?;
        self.expect_kw("PACKAGE")?;
        self.expect(TokenKind::LParen, "'('")?;
        let pkg_alias = self.ident("relation alias inside PACKAGE(..)")?;
        self.expect(TokenKind::RParen, "')'")?;
        let package_name = if self.eat_kw("AS") {
            self.ident("package name after AS")?
        } else if matches!(self.peek(), TokenKind::Ident(s) if !s.eq_ignore_ascii_case("FROM")) {
            self.ident("package name")?
        } else {
            "P".to_owned()
        };

        self.expect_kw("FROM")?;
        let relation = self.ident("relation name")?;
        let mut relation_alias = relation.clone();
        if self.eat_kw("AS") {
            relation_alias = self.ident("relation alias after AS")?;
        } else if matches!(self.peek(), TokenKind::Ident(s)
            if !is_clause_keyword(s))
        {
            relation_alias = self.ident("relation alias")?;
        }
        if relation_alias != pkg_alias && relation != pkg_alias {
            return self.error(format!(
                "PACKAGE({pkg_alias}) does not match the FROM relation {relation} (alias {relation_alias})"
            ));
        }

        let mut repeat = None;
        if self.eat_kw("REPEAT") {
            let k = self.number("repeat count")?;
            if k < 0.0 || k.fract() != 0.0 {
                return self.error("REPEAT count must be a non-negative integer");
            }
            repeat = Some(k as u32);
        }

        let mut where_clause = None;
        if self.eat_kw("WHERE") {
            let quals = vec![relation_alias.clone(), relation.clone()];
            where_clause = Some(self.expr(&quals)?);
        }

        let mut such_that = Vec::new();
        if self.eat_kw("SUCH") {
            self.expect_kw("THAT")?;
            let quals = vec![
                package_name.clone(),
                relation_alias.clone(),
                relation.clone(),
            ];
            loop {
                such_that.push(self.global_predicate(&package_name, &quals)?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }

        let mut objective = None;
        let sense = if self.eat_kw("MINIMIZE") {
            Some(ObjectiveSense::Minimize)
        } else if self.eat_kw("MAXIMIZE") {
            Some(ObjectiveSense::Maximize)
        } else {
            None
        };
        if let Some(sense) = sense {
            let quals = vec![
                package_name.clone(),
                relation_alias.clone(),
                relation.clone(),
            ];
            let agg = self.agg_expr(&package_name, &quals)?;
            objective = Some(Objective { sense, agg });
        }

        Ok(PackageQuery {
            package_name,
            relation,
            relation_alias,
            repeat,
            where_clause,
            such_that,
            objective,
        })
    }

    // ------------------------------------------------------------------
    // Global predicates
    // ------------------------------------------------------------------
    fn global_predicate(&mut self, pkg: &str, quals: &[String]) -> PaqlResult<GlobalPredicate> {
        let lhs = self.agg_term(pkg, quals)?;
        if self.eat_kw("BETWEEN") {
            let agg = match lhs {
                AggTerm::Agg(a) => a,
                AggTerm::Const(_) => {
                    return self.error("BETWEEN requires an aggregate on its left side")
                }
            };
            let lo = self.number("BETWEEN lower bound")?;
            self.expect_kw("AND")?;
            let hi = self.number("BETWEEN upper bound")?;
            if lo > hi {
                return self.error(format!("empty BETWEEN range [{lo}, {hi}]"));
            }
            return Ok(GlobalPredicate::Between { agg, lo, hi });
        }
        let op = self.cmp_op()?;
        let rhs = self.agg_term(pkg, quals)?;
        Ok(GlobalPredicate::Cmp { lhs, op, rhs })
    }

    fn cmp_op(&mut self) -> PaqlResult<CmpOp> {
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return self.error(format!("expected comparison operator, found {other:?}")),
        };
        self.advance();
        Ok(op)
    }

    fn agg_term(&mut self, pkg: &str, quals: &[String]) -> PaqlResult<AggTerm> {
        match self.peek().clone() {
            TokenKind::Number(_) | TokenKind::Minus => {
                Ok(AggTerm::Const(self.number("numeric constant")?))
            }
            TokenKind::LParen => {
                // Subquery form: ( SELECT ... FROM pkg [WHERE ...] )
                Ok(AggTerm::Agg(self.subquery_agg(pkg, quals)?))
            }
            TokenKind::Ident(_) => Ok(AggTerm::Agg(self.agg_expr(pkg, quals)?)),
            other => self.error(format!(
                "expected aggregate, subquery, or constant, found {other:?}"
            )),
        }
    }

    /// `FUNC(P.attr)`, `FUNC(P.*)`, `FUNC(attr)`, `FUNC(*)` or a
    /// parenthesized subquery.
    fn agg_expr(&mut self, pkg: &str, quals: &[String]) -> PaqlResult<AggExpr> {
        if *self.peek() == TokenKind::LParen {
            return self.subquery_agg(pkg, quals);
        }
        let func = self.ident("aggregate function")?;
        let func_up = func.to_ascii_uppercase();
        self.expect(TokenKind::LParen, "'(' after aggregate function")?;
        let target = self.agg_target(quals)?;
        self.expect(TokenKind::RParen, "')' closing aggregate")?;
        match (func_up.as_str(), target) {
            ("COUNT", _) => Ok(AggExpr::Count),
            ("SUM", Some(attr)) => Ok(AggExpr::Sum(attr)),
            ("AVG", Some(attr)) => Ok(AggExpr::Avg(attr)),
            ("SUM" | "AVG", None) => self.error(format!("{func_up}(*) is not meaningful")),
            ("MIN" | "MAX", _) => self.error(
                "MIN/MAX package aggregates are non-linear and unsupported \
                 (the paper restricts PaQL evaluation to linear functions)",
            ),
            _ => self.error(format!("unknown aggregate function {func}")),
        }
    }

    /// The inside of `FUNC( ... )`: `*`, `attr`, `P.*`, or `P.attr`.
    /// Returns `None` for `*`.
    fn agg_target(&mut self, quals: &[String]) -> PaqlResult<Option<String>> {
        if *self.peek() == TokenKind::Star {
            self.advance();
            return Ok(None);
        }
        let first = self.ident("attribute")?;
        if *self.peek() == TokenKind::Dot {
            self.advance();
            if !quals.iter().any(|q| q == &first) {
                return self.error(format!("unknown qualifier {first:?}"));
            }
            if *self.peek() == TokenKind::Star {
                self.advance();
                return Ok(None);
            }
            return Ok(Some(self.ident("attribute after '.'")?));
        }
        Ok(Some(first))
    }

    /// `( SELECT COUNT(*) | SUM(attr) FROM <pkg> [WHERE expr] )`
    fn subquery_agg(&mut self, pkg: &str, quals: &[String]) -> PaqlResult<AggExpr> {
        self.expect(TokenKind::LParen, "'('")?;
        self.expect_kw("SELECT")?;
        let func = self.ident("aggregate function in subquery")?;
        let func_up = func.to_ascii_uppercase();
        self.expect(TokenKind::LParen, "'(' after aggregate function")?;
        let target = self.agg_target(quals)?;
        self.expect(TokenKind::RParen, "')' closing aggregate")?;
        self.expect_kw("FROM")?;
        let from = self.ident("package name in subquery FROM")?;
        if from != pkg {
            return self.error(format!(
                "subquery must range over the package {pkg:?}, found {from:?}"
            ));
        }
        let mut filter = None;
        if self.eat_kw("WHERE") {
            filter = Some(self.expr(quals)?);
        }
        self.expect(TokenKind::RParen, "')' closing subquery")?;
        match (func_up.as_str(), target, filter) {
            ("COUNT", _, Some(f)) => Ok(AggExpr::CountWhere(f)),
            ("COUNT", _, None) => Ok(AggExpr::Count),
            ("SUM", Some(attr), Some(f)) => Ok(AggExpr::SumWhere(attr, f)),
            ("SUM", Some(attr), None) => Ok(AggExpr::Sum(attr)),
            ("AVG", Some(attr), None) => Ok(AggExpr::Avg(attr)),
            ("SUM" | "AVG", None, _) => self.error(format!("{func_up}(*) is not meaningful")),
            ("AVG", _, Some(_)) => {
                self.error("AVG with a WHERE filter is not supported (non-linear)")
            }
            ("MIN" | "MAX", ..) => {
                self.error("MIN/MAX package aggregates are non-linear and unsupported")
            }
            _ => self.error(format!("unknown aggregate function {func}")),
        }
    }

    // ------------------------------------------------------------------
    // Scalar (tuple-level) expressions, used in WHERE clauses
    // ------------------------------------------------------------------
    fn expr(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        self.or_expr(quals)
    }

    fn or_expr(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        let mut lhs = self.and_expr(quals)?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr(quals)?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        let mut lhs = self.not_expr(quals)?;
        // Inside SUCH THAT, a top-level AND separates global predicates;
        // here (scalar context) AND binds predicates *within* the same
        // WHERE. The subquery parser closes the scope with ')', so no
        // ambiguity arises: scalar AND is always consumed here first
        // only when a comparison follows.
        while self.peek().is_keyword("AND") && self.starts_predicate(1) {
            self.advance();
            let rhs = self.not_expr(quals)?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    /// Heuristic lookahead: does the token at `offset` begin a scalar
    /// predicate (rather than a global predicate after a separating
    /// AND)? Inside scalar context this is always true except when the
    /// next tokens look like an aggregate call or subquery — which only
    /// occur at the SUCH THAT level.
    fn starts_predicate(&self, offset: usize) -> bool {
        match self.peek_at(offset) {
            TokenKind::Ident(s) => {
                let up = s.to_ascii_uppercase();
                if matches!(up.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
                    // Aggregate call ⇒ a new global predicate.
                    !matches!(self.peek_at(offset + 1), TokenKind::LParen)
                } else {
                    true
                }
            }
            TokenKind::LParen => {
                // A '(' after AND could be a parenthesized scalar
                // expression or a subquery; `( SELECT` means subquery.
                !matches!(self.peek_at(offset + 1), TokenKind::Ident(s) if s.eq_ignore_ascii_case("SELECT"))
            }
            TokenKind::Number(_) | TokenKind::Str(_) | TokenKind::Minus => true,
            _ => true,
        }
    }

    fn not_expr(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        if self.eat_kw("NOT") {
            return Ok(self.not_expr(quals)?.not());
        }
        self.predicate(quals)
    }

    fn predicate(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        let lhs = self.arith(quals)?;
        if self.eat_kw("BETWEEN") {
            let lo = self.arith(quals)?;
            self.expect_kw("AND")?;
            let hi = self.arith(quals)?;
            return Ok(lhs.between(lo, hi));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if negated {
                lhs.is_not_null()
            } else {
                lhs.is_null()
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.arith(quals)?;
            return Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn arith(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        let mut lhs = self.term(quals)?;
        loop {
            if *self.peek() == TokenKind::Plus {
                self.advance();
                lhs = lhs.add(self.term(quals)?);
            } else if *self.peek() == TokenKind::Minus {
                self.advance();
                lhs = lhs.sub(self.term(quals)?);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn term(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        let mut lhs = self.factor(quals)?;
        loop {
            if *self.peek() == TokenKind::Star {
                self.advance();
                lhs = lhs.mul(self.factor(quals)?);
            } else if *self.peek() == TokenKind::Slash {
                self.advance();
                lhs = lhs.div(self.factor(quals)?);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn factor(&mut self, quals: &[String]) -> PaqlResult<Expr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::lit(n))
            }
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::lit(0.0).sub(self.factor(quals)?))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Lit(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.or_expr(quals)?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Lit(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::lit(false));
                }
                self.advance();
                if *self.peek() == TokenKind::Dot {
                    self.advance();
                    if !quals.iter().any(|q| q == &name) {
                        return self.error(format!("unknown qualifier {name:?}"));
                    }
                    let attr = self.ident("attribute after '.'")?;
                    return Ok(Expr::col(attr));
                }
                Ok(Expr::col(name))
            }
            other => self.error(format!("unexpected token {other:?} in expression")),
        }
    }
}

/// Keywords that terminate the FROM clause (so a bare alias is not
/// confused with a following clause keyword).
fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "REPEAT" | "WHERE" | "SUCH" | "MINIMIZE" | "MAXIMIZE"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNNING_EXAMPLE: &str = "SELECT PACKAGE(R) AS P \
        FROM Recipes R REPEAT 0 \
        WHERE R.gluten = 'free' \
        SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 \
        MINIMIZE SUM(P.saturated_fat)";

    #[test]
    fn parses_running_example() {
        let q = parse_paql(RUNNING_EXAMPLE).unwrap();
        assert_eq!(q.package_name, "P");
        assert_eq!(q.relation, "Recipes");
        assert_eq!(q.relation_alias, "R");
        assert_eq!(q.repeat, Some(0));
        assert_eq!(
            q.where_clause.as_ref().unwrap().to_string(),
            "gluten = 'free'"
        );
        assert_eq!(q.such_that.len(), 2);
        assert_eq!(
            q.such_that[0],
            GlobalPredicate::Cmp {
                lhs: AggTerm::Agg(AggExpr::Count),
                op: CmpOp::Eq,
                rhs: AggTerm::Const(3.0),
            }
        );
        assert_eq!(
            q.such_that[1],
            GlobalPredicate::Between {
                agg: AggExpr::Sum("kcal".into()),
                lo: 2.0,
                hi: 2.5
            }
        );
        let obj = q.objective.unwrap();
        assert_eq!(obj.sense, ObjectiveSense::Minimize);
        assert_eq!(obj.agg, AggExpr::Sum("saturated_fat".into()));
    }

    #[test]
    fn display_round_trips_through_parser() {
        let q = parse_paql(RUNNING_EXAMPLE).unwrap();
        let q2 = parse_paql(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn minimal_query_q2_from_paper() {
        // Q2: SELECT PACKAGE(R) AS P FROM Recipes R — infinitely many
        // packages; no repeat bound, no predicates.
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM Recipes R").unwrap();
        assert_eq!(q.repeat, None);
        assert!(q.where_clause.is_none());
        assert!(q.such_that.is_empty());
        assert!(q.objective.is_none());
    }

    #[test]
    fn alias_defaults_to_relation_name() {
        let q = parse_paql("SELECT PACKAGE(Recipes) AS P FROM Recipes").unwrap();
        assert_eq!(q.relation_alias, "Recipes");
    }

    #[test]
    fn as_keywords_are_optional() {
        let q = parse_paql("SELECT PACKAGE(R) P FROM Recipes AS R").unwrap();
        assert_eq!(q.package_name, "P");
        assert_eq!(q.relation_alias, "R");
        let q = parse_paql("SELECT PACKAGE(R) FROM Recipes R").unwrap();
        assert_eq!(q.package_name, "P", "default package name");
    }

    #[test]
    fn package_alias_must_match_from() {
        let err = parse_paql("SELECT PACKAGE(X) AS P FROM Recipes R").unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn subquery_count_comparison() {
        // The paper's §3.1 example: carbs vs protein tuple counts.
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT \
             (SELECT COUNT(*) FROM P WHERE P.carbs > 0) >= \
             (SELECT COUNT(*) FROM P WHERE P.protein <= 5)",
        )
        .unwrap();
        match &q.such_that[0] {
            GlobalPredicate::Cmp { lhs, op, rhs } => {
                assert_eq!(*op, CmpOp::Ge);
                assert!(matches!(lhs, AggTerm::Agg(AggExpr::CountWhere(_))));
                assert!(matches!(rhs, AggTerm::Agg(AggExpr::CountWhere(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_subquery_with_filter() {
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT \
             (SELECT SUM(kcal) FROM P WHERE fat < 1.0) <= 10",
        )
        .unwrap();
        match &q.such_that[0] {
            GlobalPredicate::Cmp {
                lhs: AggTerm::Agg(AggExpr::SumWhere(attr, f)),
                ..
            } => {
                assert_eq!(attr, "kcal");
                assert_eq!(f.to_string(), "fat < 1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn avg_constraint_parses() {
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM R SUCH THAT AVG(P.kcal) <= 0.8").unwrap();
        assert!(matches!(
            q.such_that[0],
            GlobalPredicate::Cmp {
                lhs: AggTerm::Agg(AggExpr::Avg(_)),
                op: CmpOp::Le,
                ..
            }
        ));
    }

    #[test]
    fn min_max_rejected_as_nonlinear() {
        let err =
            parse_paql("SELECT PACKAGE(R) AS P FROM R SUCH THAT MIN(P.kcal) >= 1").unwrap_err();
        assert!(err.to_string().contains("non-linear"));
    }

    #[test]
    fn multiple_and_separated_global_predicates() {
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 2 SUCH THAT \
             COUNT(P.*) >= 2 AND COUNT(P.*) <= 5 AND SUM(P.x) = 10 \
             MAXIMIZE SUM(P.y)",
        )
        .unwrap();
        assert_eq!(q.such_that.len(), 3);
        assert_eq!(q.repeat, Some(2));
        assert_eq!(q.objective.unwrap().sense, ObjectiveSense::Maximize);
    }

    #[test]
    fn where_with_boolean_structure() {
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM Recipes R \
             WHERE (R.kcal > 0.2 AND R.kcal < 1.0) OR NOT R.gluten = 'full'",
        )
        .unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("OR"), "{w}");
        assert!(w.contains("NOT"), "{w}");
    }

    #[test]
    fn where_between_and_such_that_between_coexist() {
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R \
             WHERE R.kcal BETWEEN 0.1 AND 0.9 AND R.fat > 0 \
             SUCH THAT SUM(P.kcal) BETWEEN 1 AND 2",
        )
        .unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("BETWEEN 0.1 AND 0.9"), "{w}");
        assert!(w.contains("fat > 0"), "{w}");
        assert_eq!(q.such_that.len(), 1);
    }

    #[test]
    fn arithmetic_in_where() {
        let q =
            parse_paql("SELECT PACKAGE(R) AS P FROM R WHERE R.a * 2 + 1 >= R.b / 4 - 3").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((a * 2) + 1) >= ((b / 4) - 3)");
    }

    #[test]
    fn unknown_qualifier_rejected() {
        let err = parse_paql("SELECT PACKAGE(R) AS P FROM Recipes R WHERE X.kcal > 1").unwrap_err();
        assert!(err.to_string().contains("unknown qualifier"));
    }

    #[test]
    fn subquery_over_wrong_name_rejected() {
        let err = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R SUCH THAT \
             (SELECT COUNT(*) FROM Q WHERE x > 0) >= 1",
        )
        .unwrap_err();
        assert!(err.to_string().contains("must range over the package"));
    }

    #[test]
    fn negative_repeat_rejected() {
        assert!(parse_paql("SELECT PACKAGE(R) AS P FROM R REPEAT -1").is_err());
    }

    #[test]
    fn empty_between_range_rejected() {
        assert!(
            parse_paql("SELECT PACKAGE(R) AS P FROM R SUCH THAT SUM(P.x) BETWEEN 5 AND 2").is_err()
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_paql("SELECT PACKAGE(R) AS P FROM R banana banana").is_err());
    }

    #[test]
    fn constants_allowed_on_either_side() {
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R SUCH THAT 3 <= COUNT(P.*) AND SUM(P.x) >= -2.5",
        )
        .unwrap();
        assert!(matches!(
            q.such_that[0],
            GlobalPredicate::Cmp { lhs: AggTerm::Const(c), .. } if c == 3.0
        ));
        assert!(matches!(
            q.such_that[1],
            GlobalPredicate::Cmp { rhs: AggTerm::Const(c), .. } if c == -2.5
        ));
    }

    #[test]
    fn null_and_boolean_literals_in_where() {
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM R WHERE R.x IS NOT NULL AND R.ok = TRUE")
            .unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("IS NOT NULL"), "{w}");
        assert!(w.contains("ok = true"), "{w}");
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_paql(
            "select package(r) as p from Recipes r repeat 1 \
             where r.x > 0 such that count(p.*) = 2 maximize sum(p.x)",
        )
        .unwrap();
        assert_eq!(q.repeat, Some(1));
        assert_eq!(q.such_that.len(), 1);
    }
}
