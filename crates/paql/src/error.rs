//! PaQL error type.

use std::fmt;

/// Errors from lexing, parsing, validating, or translating PaQL.
#[derive(Debug, Clone, PartialEq)]
pub enum PaqlError {
    /// Tokenizer error with byte offset.
    Lex {
        /// Byte position in the input.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Parser error.
    Parse {
        /// Byte position of the offending token.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Semantic validation error (unknown attribute, non-linear
    /// construct, …).
    Semantic(String),
    /// Error surfaced from the relational engine during translation.
    Relational(paq_relational::RelError),
}

impl fmt::Display for PaqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            PaqlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            PaqlError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            PaqlError::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for PaqlError {}

impl From<paq_relational::RelError> for PaqlError {
    fn from(e: paq_relational::RelError) -> Self {
        PaqlError::Relational(e)
    }
}

/// Result alias for this crate.
pub type PaqlResult<T> = Result<T, PaqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = PaqlError::Parse {
            position: 17,
            message: "expected FROM".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 17: expected FROM");
    }

    #[test]
    fn relational_errors_convert() {
        let e: PaqlError = paq_relational::RelError::UnknownColumn("x".into()).into();
        assert!(matches!(e, PaqlError::Relational(_)));
    }
}
