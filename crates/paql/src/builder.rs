//! Fluent, programmatic construction of PaQL queries.
//!
//! [`Paql::package`] starts a [`PaqlBuilder`] that produces exactly the
//! same [`PackageQuery`] AST the text parser yields, so programmatic and
//! textual queries are interchangeable everywhere (including
//! `paq_db::PackageDb::execute_query`):
//!
//! ```
//! use paq_lang::{parse_paql, Paql};
//!
//! let built = Paql::package("R")
//!     .from("Recipes")
//!     .repeat(0)
//!     .count_eq(3)
//!     .sum_between("kcal", 2.0, 2.5)
//!     .minimize_sum("saturated_fat")
//!     .build();
//!
//! let parsed = parse_paql(
//!     "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
//!      SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2 AND 2.5 \
//!      MINIMIZE SUM(P.saturated_fat)",
//! )
//! .unwrap();
//! assert_eq!(built, parsed);
//! ```

use paq_relational::expr::CmpOp;
use paq_relational::Expr;

use crate::ast::{AggExpr, AggTerm, GlobalPredicate, Objective, ObjectiveSense, PackageQuery};

/// Entry point for the fluent query builder.
pub struct Paql;

impl Paql {
    /// Start building `SELECT PACKAGE(alias) AS P FROM alias alias`.
    ///
    /// The relation defaults to the alias (as in `FROM R R`); call
    /// [`PaqlBuilder::from`] to name the input relation and
    /// [`PaqlBuilder::named`] to rename the package.
    pub fn package(alias: impl Into<String>) -> PaqlBuilder {
        let alias = alias.into();
        PaqlBuilder {
            query: PackageQuery {
                package_name: "P".into(),
                relation: alias.clone(),
                relation_alias: alias,
                repeat: None,
                where_clause: None,
                such_that: Vec::new(),
                objective: None,
            },
        }
    }
}

/// Fluent builder for [`PackageQuery`]; see [`Paql::package`].
#[derive(Debug, Clone)]
pub struct PaqlBuilder {
    query: PackageQuery,
}

impl PaqlBuilder {
    /// Set the package name (`AS name`); defaults to `P`.
    ///
    /// Note: the AST pretty-printer renders aggregates with the
    /// conventional `P.` qualifier, so only `P`-named packages
    /// round-trip through `to_string()` + `parse_paql` (evaluation is
    /// unaffected — the package name is cosmetic).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.query.package_name = name.into();
        self
    }

    /// Set the input relation name (`FROM relation alias`).
    pub fn from(mut self, relation: impl Into<String>) -> Self {
        self.query.relation = relation.into();
        self
    }

    /// `REPEAT k`: allow each tuple at most `k + 1` times.
    pub fn repeat(mut self, k: u32) -> Self {
        self.query.repeat = Some(k);
        self
    }

    /// Add a base (`WHERE`) predicate; multiple calls are AND-ed.
    ///
    /// Column references use bare names (`Expr::col("gluten")`), exactly
    /// what the parser produces after resolving alias qualifiers.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.query.where_clause = Some(match self.query.where_clause.take() {
            Some(w) => w.and(predicate),
            None => predicate,
        });
        self
    }

    /// Add a raw `SUCH THAT` predicate (escape hatch for forms without
    /// a dedicated method, e.g. indicator-count comparisons).
    pub fn such_that(mut self, predicate: GlobalPredicate) -> Self {
        self.query.such_that.push(predicate);
        self
    }

    fn cmp(self, lhs: AggExpr, op: CmpOp, rhs: f64) -> Self {
        self.such_that(GlobalPredicate::Cmp {
            lhs: AggTerm::Agg(lhs),
            op,
            rhs: AggTerm::Const(rhs),
        })
    }

    /// `COUNT(P.*) = n`.
    pub fn count_eq(self, n: u64) -> Self {
        self.cmp(AggExpr::Count, CmpOp::Eq, n as f64)
    }

    /// `COUNT(P.*) <= n`.
    pub fn count_le(self, n: u64) -> Self {
        self.cmp(AggExpr::Count, CmpOp::Le, n as f64)
    }

    /// `COUNT(P.*) >= n`.
    pub fn count_ge(self, n: u64) -> Self {
        self.cmp(AggExpr::Count, CmpOp::Ge, n as f64)
    }

    /// `COUNT(P.*) BETWEEN lo AND hi`.
    pub fn count_between(self, lo: u64, hi: u64) -> Self {
        self.such_that(GlobalPredicate::Between {
            agg: AggExpr::Count,
            lo: lo as f64,
            hi: hi as f64,
        })
    }

    /// `SUM(P.attr) = v`.
    pub fn sum_eq(self, attr: impl Into<String>, v: f64) -> Self {
        self.cmp(AggExpr::Sum(attr.into()), CmpOp::Eq, v)
    }

    /// `SUM(P.attr) <= v`.
    pub fn sum_le(self, attr: impl Into<String>, v: f64) -> Self {
        self.cmp(AggExpr::Sum(attr.into()), CmpOp::Le, v)
    }

    /// `SUM(P.attr) >= v`.
    pub fn sum_ge(self, attr: impl Into<String>, v: f64) -> Self {
        self.cmp(AggExpr::Sum(attr.into()), CmpOp::Ge, v)
    }

    /// `SUM(P.attr) BETWEEN lo AND hi`.
    pub fn sum_between(self, attr: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.such_that(GlobalPredicate::Between {
            agg: AggExpr::Sum(attr.into()),
            lo,
            hi,
        })
    }

    /// `AVG(P.attr) <= v`.
    pub fn avg_le(self, attr: impl Into<String>, v: f64) -> Self {
        self.cmp(AggExpr::Avg(attr.into()), CmpOp::Le, v)
    }

    /// `AVG(P.attr) >= v`.
    pub fn avg_ge(self, attr: impl Into<String>, v: f64) -> Self {
        self.cmp(AggExpr::Avg(attr.into()), CmpOp::Ge, v)
    }

    /// `AVG(P.attr) BETWEEN lo AND hi`.
    pub fn avg_between(self, attr: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.such_that(GlobalPredicate::Between {
            agg: AggExpr::Avg(attr.into()),
            lo,
            hi,
        })
    }

    /// Set an explicit objective clause.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.query.objective = Some(objective);
        self
    }

    /// `MINIMIZE SUM(P.attr)`.
    pub fn minimize_sum(self, attr: impl Into<String>) -> Self {
        self.objective(Objective {
            sense: ObjectiveSense::Minimize,
            agg: AggExpr::Sum(attr.into()),
        })
    }

    /// `MAXIMIZE SUM(P.attr)`.
    pub fn maximize_sum(self, attr: impl Into<String>) -> Self {
        self.objective(Objective {
            sense: ObjectiveSense::Maximize,
            agg: AggExpr::Sum(attr.into()),
        })
    }

    /// `MINIMIZE COUNT(P.*)`.
    pub fn minimize_count(self) -> Self {
        self.objective(Objective {
            sense: ObjectiveSense::Minimize,
            agg: AggExpr::Count,
        })
    }

    /// `MAXIMIZE COUNT(P.*)`.
    pub fn maximize_count(self) -> Self {
        self.objective(Objective {
            sense: ObjectiveSense::Maximize,
            agg: AggExpr::Count,
        })
    }

    /// Finish, yielding the assembled AST.
    pub fn build(self) -> PackageQuery {
        self.query
    }
}

impl From<PaqlBuilder> for PackageQuery {
    fn from(b: PaqlBuilder) -> PackageQuery {
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_paql;

    #[test]
    fn builder_matches_parser_on_running_example() {
        let built = Paql::package("R")
            .from("Recipes")
            .repeat(0)
            .filter(Expr::col("gluten").eq(Expr::lit("free")))
            .count_eq(3)
            .sum_between("kcal", 2.0, 2.5)
            .minimize_sum("saturated_fat")
            .build();
        let parsed = parse_paql(
            "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0 \
             WHERE R.gluten = 'free' \
             SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 \
             MINIMIZE SUM(P.saturated_fat)",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn relation_defaults_to_alias() {
        let q = Paql::package("R").count_eq(1).build();
        assert_eq!(q.relation, "R");
        assert_eq!(q.relation_alias, "R");
        assert_eq!(q.package_name, "P");
        assert_eq!(q.repeat, None, "repetition is unlimited by default");
        let named = Paql::package("R").named("Pkg").count_eq(1).build();
        assert_eq!(named.package_name, "Pkg");
    }

    #[test]
    fn built_query_display_reparses_identically() {
        let q = Paql::package("G")
            .from("Galaxy")
            .repeat(2)
            .count_between(8, 12)
            .sum_le("u", 310.0)
            .avg_ge("redshift", 0.01)
            .maximize_sum("petror90_r")
            .build();
        let reparsed = parse_paql(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn filters_accumulate_with_and() {
        let q = Paql::package("T")
            .filter(Expr::col("a").is_not_null())
            .filter(Expr::col("b").gt(Expr::lit(0.0)))
            .count_eq(1)
            .build();
        let w = q.where_clause.expect("where clause");
        assert_eq!(
            w,
            Expr::col("a")
                .is_not_null()
                .and(Expr::col("b").gt(Expr::lit(0.0)))
        );
    }
}
