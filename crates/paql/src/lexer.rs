//! PaQL tokenizer.
//!
//! Hand-written, byte-offset-tracking lexer. Keywords are
//! case-insensitive (as in SQL); identifiers preserve case. String
//! literals use single quotes with `''` as the escape for a quote.

use crate::error::{PaqlError, PaqlResult};

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (uppercased keyword matching happens in the
    /// parser via [`TokenKind::is_keyword`]).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Case-insensitive keyword test for identifier tokens.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a PaQL string.
pub fn tokenize(input: &str) -> PaqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    position: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    position: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    position: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    position: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(PaqlError::Lex {
                        position: start,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        position: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(PaqlError::Lex {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    position: start,
                });
            }
            '.' => {
                // Disambiguate attribute dot from a leading-dot float
                // like ".5".
                if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let (num, len) = lex_number(&input[i..], start)?;
                    tokens.push(Token {
                        kind: TokenKind::Number(num),
                        position: start,
                    });
                    i += len;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        position: start,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (num, len) = lex_number(&input[i..], start)?;
                tokens.push(Token {
                    kind: TokenKind::Number(num),
                    position: start,
                });
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i + 1;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..end].to_owned()),
                    position: start,
                });
                i = end;
            }
            other => {
                return Err(PaqlError::Lex {
                    position: start,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: bytes.len(),
    });
    Ok(tokens)
}

/// Lex a numeric literal starting at the beginning of `rest`; returns
/// the value and consumed byte length.
fn lex_number(rest: &str, position: usize) -> PaqlResult<(f64, usize)> {
    let bytes = rest.as_bytes();
    let mut end = 0;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let b = bytes[end] as char;
        match b {
            '0'..='9' => end += 1,
            '.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                end += 1;
            }
            'e' | 'E' if !seen_exp && end > 0 => {
                seen_exp = true;
                end += 1;
                if matches!(bytes.get(end), Some(b'+') | Some(b'-')) {
                    end += 1;
                }
            }
            _ => break,
        }
    }
    rest[..end]
        .parse::<f64>()
        .map(|v| (v, end))
        .map_err(|e| PaqlError::Lex {
            position,
            message: format!("bad number: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_running_example_fragment() {
        let toks = kinds("SELECT PACKAGE(R) AS P");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("PACKAGE".into()),
                TokenKind::LParen,
                TokenKind::Ident("R".into()),
                TokenKind::RParen,
                TokenKind::Ident("AS".into()),
                TokenKind::Ident("P".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_in_all_shapes() {
        assert_eq!(
            kinds("2 2.5 .5 1e3 1.5E-2")[..5],
            [
                TokenKind::Number(2.0),
                TokenKind::Number(2.5),
                TokenKind::Number(0.5),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.015),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >=")[..7],
            [
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds("'free' 'it''s'")[..2],
            [TokenKind::Str("free".into()), TokenKind::Str("it's".into())]
        );
    }

    #[test]
    fn dotted_attribute_vs_decimal() {
        assert_eq!(
            kinds("R.kcal")[..3],
            [
                TokenKind::Ident("R".into()),
                TokenKind::Dot,
                TokenKind::Ident("kcal".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors_with_position() {
        match tokenize("WHERE x = 'oops").unwrap_err() {
            PaqlError::Lex { position, .. } => assert_eq!(position, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stray_character_rejected() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keyword_test_is_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].kind.is_keyword("SELECT"));
        assert!(t[0].kind.is_keyword("select"));
        assert!(!t[0].kind.is_keyword("FROM"));
    }
}
