//! Model standardization and lightweight presolve.
//!
//! Converts a [`Model`] into the internal standard form used by the
//! simplex core: structural columns over *range rows* `L ≤ a·x ≤ U`,
//! with all single-variable rows folded into variable bounds. That fold
//! matters for package queries: the SKETCH query of §4.2.1 adds one
//! group-cardinality constraint *per group* (`COUNT(p_S WHERE gid=j) ≤
//! |G_j|`), but each such row touches exactly one representative
//! variable, so presolve turns them all into variable bounds and the
//! simplex basis stays as small as the number of true global predicates.

use crate::model::Model;

/// The standardized LP data shared by the simplex and branch-and-bound.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Number of structural variables (== model variables).
    pub n: usize,
    /// Number of retained (multi-variable) rows.
    pub m: usize,
    /// Sparse structural columns: `cols[j]` lists `(row, coefficient)`.
    pub cols: Vec<Vec<(u32, f64)>>,
    /// Objective in *minimization* form (model objective × sense factor).
    pub obj_min: Vec<f64>,
    /// Row lower bounds.
    pub row_lo: Vec<f64>,
    /// Row upper bounds.
    pub row_hi: Vec<f64>,
    /// `Sense::min_factor()` of the original model: internal objective
    /// = factor × model objective.
    pub obj_factor: f64,
    /// Per-variable integrality flags (used by branch-and-bound).
    pub integer: Vec<bool>,
}

impl StandardForm {
    /// Convert an internal minimization objective value back to the
    /// model's sense.
    pub fn model_objective(&self, internal: f64) -> f64 {
        internal * self.obj_factor
    }
}

/// Variable bounds, mutable during branch-and-bound.
#[derive(Debug, Clone)]
pub struct VarBounds {
    /// Lower bounds, one per structural variable.
    pub lb: Vec<f64>,
    /// Upper bounds, one per structural variable.
    pub ub: Vec<f64>,
}

/// Result of presolving a model.
#[derive(Debug)]
pub enum Presolved {
    /// The model is trivially infeasible (contradictory bounds or an
    /// unsatisfiable constant row).
    Infeasible,
    /// Standardized form plus initial bounds.
    Ready(Box<StandardForm>, VarBounds),
}

/// Standardize `model`: merge duplicate terms, fold singleton rows into
/// bounds, round integer bounds inward, drop constant rows.
pub fn presolve(model: &Model) -> Presolved {
    presolve_opts(model, true)
}

/// [`presolve`] with the singleton-folding ablation switch
/// ([`crate::SolverConfig::fold_singletons`]): with `fold_singletons =
/// false` single-variable rows stay in the row set and enlarge the
/// simplex basis — the configuration the ablation benchmark measures.
pub fn presolve_opts(model: &Model, fold_singletons: bool) -> Presolved {
    let n = model.num_vars();
    let mut lb: Vec<f64> = model.vars().iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars().iter().map(|v| v.ub).collect();
    let integer: Vec<bool> = model.vars().iter().map(|v| v.integer).collect();

    #[allow(clippy::type_complexity)] // sparse range row: (terms, lo, hi)
    let mut rows: Vec<(Vec<(u32, f64)>, f64, f64)> = Vec::new();
    let mut merged: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for c in model.constraints() {
        merged.clear();
        for (v, coef) in &c.terms {
            if *coef != 0.0 {
                *merged.entry(v.0).or_insert(0.0) += coef;
            }
        }
        let terms: Vec<(u32, f64)> = {
            let mut t: Vec<(u32, f64)> = merged
                .iter()
                .filter(|(_, c)| **c != 0.0)
                .map(|(v, c)| (*v, *c))
                .collect();
            t.sort_by_key(|(v, _)| *v);
            t
        };
        match terms.len() {
            0 => {
                // Constant row: 0 must lie within [lo, hi].
                if c.lo > 0.0 || c.hi < 0.0 {
                    return Presolved::Infeasible;
                }
            }
            1 if fold_singletons => {
                let (v, a) = terms[0];
                let (vlo, vhi) = if a > 0.0 {
                    (c.lo / a, c.hi / a)
                } else {
                    (c.hi / a, c.lo / a)
                };
                let j = v as usize;
                lb[j] = lb[j].max(vlo);
                ub[j] = ub[j].min(vhi);
            }
            _ => rows.push((terms, c.lo, c.hi)),
        }
    }

    // Round integer bounds inward (a fractional bound can never bind an
    // integer variable), with a tolerance so e.g. ub = 2.9999999 stays 3.
    for j in 0..n {
        if integer[j] {
            if lb[j].is_finite() {
                lb[j] = (lb[j] - crate::INT_EPS).ceil();
            }
            if ub[j].is_finite() {
                ub[j] = (ub[j] + crate::INT_EPS).floor();
            }
        }
        if lb[j] > ub[j] + crate::EPS {
            return Presolved::Infeasible;
        }
        // Snap near-equal bounds exactly together to avoid tolerance
        // churn inside the simplex.
        if lb[j] > ub[j] {
            ub[j] = lb[j];
        }
    }

    let m = rows.len();
    let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut row_lo = Vec::with_capacity(m);
    let mut row_hi = Vec::with_capacity(m);
    for (i, (terms, lo, hi)) in rows.into_iter().enumerate() {
        for (v, coef) in terms {
            cols[v as usize].push((i as u32, coef));
        }
        row_lo.push(lo);
        row_hi.push(hi);
    }

    let factor = model.sense().min_factor();
    let obj_min: Vec<f64> = model.vars().iter().map(|v| v.obj * factor).collect();

    Presolved::Ready(
        Box::new(StandardForm {
            n,
            m,
            cols,
            obj_min,
            row_lo,
            row_hi,
            obj_factor: factor,
            integer,
        }),
        VarBounds { lb, ub },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 100.0, 1.0);
        let y = m.add_var(0.0, 100.0, 1.0);
        m.add_range(vec![(x, 2.0)], 4.0, 10.0); // → x ∈ [2, 5]
        m.add_le(vec![(x, 1.0), (y, 1.0)], 50.0); // kept
        match presolve(&m) {
            Presolved::Ready(form, bounds) => {
                assert_eq!(form.m, 1, "only the two-variable row remains");
                assert_eq!(bounds.lb[0], 2.0);
                assert_eq!(bounds.ub[0], 5.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_coefficient_singleton_swaps_bounds() {
        let mut m = Model::new();
        let x = m.add_var(-100.0, 100.0, 0.0);
        m.add_range(vec![(x, -1.0)], -5.0, 3.0); // −5 ≤ −x ≤ 3 → x ∈ [−3, 5]
        match presolve(&m) {
            Presolved::Ready(_, b) => {
                assert_eq!(b.lb[0], -3.0);
                assert_eq!(b.ub[0], 5.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contradictory_singleton_is_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0, 0.0);
        m.add_ge(vec![(x, 1.0)], 5.0);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn constant_row_checked() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0, 0.0);
        m.add_range(vec![(x, 0.0)], 1.0, 2.0); // 0 ∉ [1,2]
        assert!(matches!(presolve(&m), Presolved::Infeasible));

        let mut ok = Model::new();
        let y = ok.add_var(0.0, 1.0, 0.0);
        ok.add_range(vec![(y, 0.0)], -1.0, 2.0); // 0 ∈ [−1,2] → dropped
        assert!(matches!(presolve(&ok), Presolved::Ready(f, _) if f.m == 0));
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 0.0);
        let y = m.add_var(0.0, 10.0, 0.0);
        // x + x + y ≤ 6 → 2x + y ≤ 6
        m.add_le(vec![(x, 1.0), (x, 1.0), (y, 1.0)], 6.0);
        match presolve(&m) {
            Presolved::Ready(form, _) => {
                assert_eq!(form.cols[0], vec![(0, 2.0)]);
                assert_eq!(form.cols[1], vec![(0, 1.0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cancelling_terms_vanish() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 0.0);
        m.add_range(vec![(x, 1.0), (x, -1.0)], 5.0, 6.0); // 0 ∉ [5,6]
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 10.0, 0.0);
        m.add_range(vec![(x, 2.0)], 1.0, 7.0); // x ∈ [0.5, 3.5] → [1, 3]
        match presolve(&m) {
            Presolved::Ready(_, b) => {
                assert_eq!(b.lb[0], 1.0);
                assert_eq!(b.ub[0], 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn objective_sign_follows_sense() {
        let mut m = Model::new();
        m.add_var(0.0, 1.0, 2.0);
        m.set_sense(Sense::Maximize);
        match presolve(&m) {
            Presolved::Ready(form, _) => {
                assert_eq!(form.obj_min[0], -2.0);
                assert_eq!(form.model_objective(-2.0), 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
