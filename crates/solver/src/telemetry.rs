//! Shared solver telemetry.
//!
//! The evaluation engine treats the MILP solver as a black box but the
//! experiments need to know how often it was called and how hard it
//! worked — e.g. SKETCHREFINE makes `m + 1` solver calls in its best
//! case versus DIRECT's single large call (§4.2.2). A [`Telemetry`] can
//! be shared (via `Arc`) across every solver instance an evaluation
//! spawns and aggregates those counters thread-safely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use paq_obs::Registry;
use parking_lot::RwLock;

use crate::solution::{SolveOutcome, SolveStats};

/// One recorded solve, kept in the history ring.
#[derive(Debug, Clone)]
pub struct SolveRecord {
    /// Nodes explored.
    pub nodes: u64,
    /// Simplex iterations used.
    pub simplex_iterations: u64,
    /// Wall-clock duration.
    pub wall_time: Duration,
    /// Whether the solve ended in a resource failure.
    pub failed: bool,
}

/// Thread-safe aggregate counters over every solve reported to this
/// sink.
#[derive(Debug, Default)]
pub struct Telemetry {
    calls: AtomicU64,
    failures: AtomicU64,
    nodes: AtomicU64,
    simplex_iterations: AtomicU64,
    wall_nanos: AtomicU64,
    history: RwLock<Vec<SolveRecord>>,
    /// Optional mirror into a shared metrics registry (see
    /// [`Telemetry::attach_registry`]); disabled by default.
    registry: RwLock<Registry>,
}

impl Telemetry {
    /// A fresh, zeroed sink.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Mirror every future [`Telemetry::record`] into `registry` as
    /// well: `solver.calls` / `solver.failures` / `solver.nodes` /
    /// `solver.simplex_iterations` counters and a `solver.solve` wall
    /// time histogram. The aggregate counters on `self` are unchanged —
    /// existing callers keep their view; the registry is a second,
    /// database-wide sink (`PackageDb::set_telemetry` attaches the
    /// shared one automatically).
    pub fn attach_registry(&self, registry: Registry) {
        *self.registry.write() = registry;
    }

    /// Record one finished solve.
    pub fn record(&self, stats: &SolveStats, outcome: &SolveOutcome) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if outcome.is_failure() {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.nodes.fetch_add(stats.nodes, Ordering::Relaxed);
        self.simplex_iterations
            .fetch_add(stats.simplex_iterations, Ordering::Relaxed);
        self.wall_nanos
            .fetch_add(stats.wall_time.as_nanos() as u64, Ordering::Relaxed);
        self.history.write().push(SolveRecord {
            nodes: stats.nodes,
            simplex_iterations: stats.simplex_iterations,
            wall_time: stats.wall_time,
            failed: outcome.is_failure(),
        });
        let registry = self.registry.read().clone();
        registry.incr("solver.calls");
        if outcome.is_failure() {
            registry.incr("solver.failures");
        }
        registry.add("solver.nodes", stats.nodes);
        registry.add("solver.simplex_iterations", stats.simplex_iterations);
        registry.observe("solver.solve", stats.wall_time);
    }

    /// Total solver invocations.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Solves that ended in resource exhaustion.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Total branch-and-bound nodes across all solves.
    pub fn total_nodes(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Total simplex iterations across all solves.
    pub fn total_simplex_iterations(&self) -> u64 {
        self.simplex_iterations.load(Ordering::Relaxed)
    }

    /// Total wall-clock time spent inside the solver.
    pub fn total_wall_time(&self) -> Duration {
        Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed))
    }

    /// Snapshot of the per-solve history.
    pub fn history(&self) -> Vec<SolveRecord> {
        self.history.read().clone()
    }

    /// Reset every counter (between experiment runs).
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        self.nodes.store(0, Ordering::Relaxed);
        self.simplex_iterations.store(0, Ordering::Relaxed);
        self.wall_nanos.store(0, Ordering::Relaxed);
        self.history.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::{LimitKind, Solution};

    fn stats(nodes: u64) -> SolveStats {
        SolveStats {
            nodes,
            simplex_iterations: nodes * 10,
            lp_solves: nodes,
            wall_time: Duration::from_millis(nodes),
            peak_memory_estimate: 0,
            root_infeasible_rows: vec![],
        }
    }

    #[test]
    fn aggregates_accumulate() {
        let t = Telemetry::new();
        let sol = Solution {
            values: vec![],
            objective: 0.0,
        };
        t.record(&stats(2), &SolveOutcome::Optimal(sol));
        t.record(
            &stats(3),
            &SolveOutcome::ResourceExhausted(LimitKind::Memory),
        );
        assert_eq!(t.calls(), 2);
        assert_eq!(t.failures(), 1);
        assert_eq!(t.total_nodes(), 5);
        assert_eq!(t.total_simplex_iterations(), 50);
        assert_eq!(t.total_wall_time(), Duration::from_millis(5));
        assert_eq!(t.history().len(), 2);
        assert!(t.history()[1].failed);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = Telemetry::new();
        t.record(&stats(1), &SolveOutcome::Infeasible);
        t.reset();
        assert_eq!(t.calls(), 0);
        assert_eq!(t.total_nodes(), 0);
        assert!(t.history().is_empty());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let t = Arc::new(Telemetry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    t.record(&stats(1), &SolveOutcome::Infeasible);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.calls(), 100);
        assert_eq!(t.history().len(), 100);
    }
}
