#![warn(missing_docs)]

//! # paq-solver — LP/MILP solver substrate
//!
//! The paper evaluates package queries by translating them to integer
//! linear programs and handing those to IBM CPLEX as a *black box*
//! (§3.2). This crate is that black box, built from scratch:
//!
//! * [`Model`] — an LP/MILP model builder: variables with bounds and
//!   integrality, range constraints `L ≤ a·x ≤ U`, and a linear
//!   objective with a [`Sense`].
//! * [`simplex`] — a **bounded-variable revised simplex** LP solver.
//!   Package-query ILPs have very few constraints (one per global
//!   predicate) over very many variables (one per tuple), so the basis
//!   stays tiny while pricing streams over all columns; this is the
//!   shape the implementation is optimized for.
//! * [`branch`] — a **branch-and-bound** MILP solver on top of the LP
//!   core: best-bound node selection, most-fractional branching, a
//!   rounding primal heuristic, and integrality-gap accounting.
//! * [`SolverConfig`] — resource budgets (wall-clock time, node count,
//!   simplex iterations, memory estimate). Exceeding a budget produces
//!   the same observable failures the paper reports for CPLEX on large
//!   or hard instances (Fig. 5: DIRECT failing on Galaxy Q2/Q6), which
//!   is how the experiments emulate solver breakdown.
//!
//! The solver is exact on the LP level (within floating-point
//! tolerances) and exhaustive on the MILP level when budgets permit, so
//! `Optimal` outcomes are true optima of the given model.

pub mod branch;
pub mod config;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod telemetry;

pub use branch::MilpSolver;
pub use config::SolverConfig;
pub use model::{ConstraintId, Model, Sense, VarId};
pub use solution::{LimitKind, Solution, SolveOutcome, SolveResult, SolveStats};
pub use telemetry::Telemetry;

/// Numerical tolerance used throughout the solver for feasibility and
/// reduced-cost tests.
pub const EPS: f64 = 1e-7;

/// Tolerance within which a value is considered integral.
pub const INT_EPS: f64 = 1e-6;
