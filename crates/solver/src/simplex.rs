//! Bounded-variable revised simplex.
//!
//! Solves `min c·x` subject to `L ≤ Ax ≤ U` (range rows) and `l ≤ x ≤ u`
//! (variable bounds). Internally each row `i` gets a *logical* variable
//! `s_i` with bounds `[L_i, U_i]` and the system becomes `Ax − s = 0`,
//! so the basis is always `m × m` where `m` is the number of rows —
//! tiny for package-query ILPs — while pricing streams over all `n`
//! structural columns.
//!
//! Implementation notes:
//! * dense `m × m` basis inverse, eta-updated each pivot and fully
//!   refactorized every [`crate::SolverConfig::refactor_interval`]
//!   pivots;
//! * composite phase-1 (minimize total bound violation of basic
//!   variables) with breakpoint-limited ratio steps;
//! * Dantzig pricing with *bound-flip batching* — consecutive profitable
//!   bound flips reuse one dual vector, which matters when an optimum
//!   rests many variables on their bounds — and a Bland-rule fallback
//!   when the objective stalls (anti-cycling);
//! * every solve ends with a full refactorization + primal recompute, so
//!   reported solutions are numerically fresh.

// Dense numeric kernels: indexed loops mirror the textbook algebra and
// often touch several parallel arrays at once.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::while_let_loop)]

use crate::presolve::{StandardForm, VarBounds};
use crate::EPS;

/// Terminal status of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpStatus {
    /// Proved optimal; payload is the structural solution and the
    /// objective *in the model's sense*.
    Optimal {
        /// Structural variable values (length `n`).
        x: Vec<f64>,
        /// Objective value in the model's original sense.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded in the optimization direction.
    Unbounded,
    /// The iteration budget expired.
    IterationLimit,
}

/// LP solve result with work counters.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Terminal status.
    pub status: LpStatus,
    /// Simplex iterations consumed (pivots + bound flips).
    pub iterations: u64,
    /// On [`LpStatus::Infeasible`]: the rows whose activity lies outside
    /// their bounds at the phase-1 optimum — a lightweight stand-in for
    /// a CPLEX irreducible-infeasible-set report (the paper's §4.4
    /// strategy 3 uses exactly this kind of diagnostic to decide which
    /// partitioning attributes to drop). Empty otherwise.
    pub violated_rows: Vec<u32>,
}

/// Knobs for one LP solve.
#[derive(Debug, Clone)]
pub struct LpOptions {
    /// Iteration budget (pivots + flips).
    pub max_iterations: u64,
    /// Pivots between full basis refactorizations.
    pub refactor_interval: u32,
    /// Amortize one dual vector across consecutive bound flips
    /// (ablation switch; see [`crate::SolverConfig::flip_batching`]).
    pub flip_batching: bool,
}

impl Default for LpOptions {
    fn default() -> Self {
        LpOptions {
            max_iterations: u64::MAX,
            refactor_interval: 64,
            flip_batching: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    AtLower,
    AtUpper,
    /// Free nonbasic variable, parked at 0.
    Free,
    /// Basic in the given row slot.
    Basic(u32),
}

/// Number of stalled (non-improving) iterations before switching to
/// Bland's anti-cycling rule.
const STALL_LIMIT: u32 = 300;

struct Simplex<'a> {
    form: &'a StandardForm,
    /// Bounds over all `n + m` variables (structural then logical).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Minimization costs over all variables (logical costs are 0).
    cost: Vec<f64>,
    status: Vec<Status>,
    /// Values of nonbasic variables (basic entries are stale).
    xn: Vec<f64>,
    /// Basis: variable index per row slot.
    basis: Vec<usize>,
    /// Dense row-major basis inverse.
    binv: Vec<f64>,
    /// Basic variable values per row slot.
    xb: Vec<f64>,
    m: usize,
    n_total: usize,
    iterations: u64,
    pivots_since_refactor: u32,
    stall: u32,
    refactor_interval: u32,
    flip_batching: bool,
}

impl<'a> Simplex<'a> {
    fn new(form: &'a StandardForm, bounds: &VarBounds, opts: &LpOptions) -> Self {
        let n = form.n;
        let m = form.m;
        let n_total = n + m;
        let mut lb = Vec::with_capacity(n_total);
        let mut ub = Vec::with_capacity(n_total);
        lb.extend_from_slice(&bounds.lb);
        ub.extend_from_slice(&bounds.ub);
        lb.extend_from_slice(&form.row_lo);
        ub.extend_from_slice(&form.row_hi);
        let mut cost = Vec::with_capacity(n_total);
        cost.extend_from_slice(&form.obj_min);
        cost.extend(std::iter::repeat_n(0.0, m));

        // Nonbasic structurals start at their "cheapest finite" bound;
        // logicals start basic (basis matrix = −I).
        let mut status = Vec::with_capacity(n_total);
        let mut xn = vec![0.0; n_total];
        for j in 0..n {
            if lb[j].is_finite() {
                status.push(Status::AtLower);
                xn[j] = lb[j];
            } else if ub[j].is_finite() {
                status.push(Status::AtUpper);
                xn[j] = ub[j];
            } else {
                status.push(Status::Free);
                xn[j] = 0.0;
            }
        }
        let mut basis = Vec::with_capacity(m);
        for i in 0..m {
            status.push(Status::Basic(i as u32));
            basis.push(n + i);
        }
        // B = −I ⇒ B⁻¹ = −I.
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = -1.0;
        }

        let mut s = Simplex {
            form,
            lb,
            ub,
            cost,
            status,
            xn,
            basis,
            binv,
            xb: vec![0.0; m],
            m,
            n_total,
            iterations: 0,
            pivots_since_refactor: 0,
            stall: 0,
            refactor_interval: opts.refactor_interval.max(1),
            flip_batching: opts.flip_batching,
        };
        s.recompute_xb();
        s
    }

    /// Sparse column of variable `j` as (row, coefficient) pairs.
    #[inline]
    fn col(&self, j: usize) -> ColIter<'_> {
        if j < self.form.n {
            ColIter::Structural(self.form.cols[j].iter())
        } else {
            ColIter::Logical(Some((j - self.form.n) as u32))
        }
    }

    /// Recompute basic values from scratch: solve `B x_B = −A_N x_N`.
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut rhs = vec![0.0; m];
        for j in 0..self.n_total {
            if matches!(self.status[j], Status::Basic(_)) {
                continue;
            }
            let xj = self.xn[j];
            if xj == 0.0 {
                continue;
            }
            for (row, coef) in self.col(j) {
                rhs[row as usize] -= coef * xj;
            }
        }
        for i in 0..m {
            let mut v = 0.0;
            for k in 0..m {
                v += self.binv[i * m + k] * rhs[k];
            }
            self.xb[i] = v;
        }
    }

    /// Rebuild the basis inverse by Gauss–Jordan elimination. Returns
    /// `false` when the basis matrix is numerically singular.
    fn refactor(&mut self) -> bool {
        let m = self.m;
        // Assemble B column-by-column: column slot i holds a_{basis[i]}.
        let mut a = vec![0.0; m * m]; // row-major augmented [B]
        for (slot, &var) in self.basis.iter().enumerate() {
            for (row, coef) in self.col(var) {
                a[row as usize * m + slot] = coef;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivoting.
            let mut best = col;
            let mut best_abs = a[col * m + col].abs();
            for r in col + 1..m {
                let v = a[r * m + col].abs();
                if v > best_abs {
                    best = r;
                    best_abs = v;
                }
            }
            if best_abs < 1e-12 {
                return false;
            }
            if best != col {
                for k in 0..m {
                    a.swap(col * m + k, best * m + k);
                    inv.swap(col * m + k, best * m + k);
                }
            }
            let piv = a[col * m + col];
            for k in 0..m {
                a[col * m + k] /= piv;
                inv[col * m + k] /= piv;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        true
    }

    /// Feasibility tolerance, lightly scaled by (finite) bound magnitude.
    #[inline]
    fn ftol(&self, j: usize) -> f64 {
        let l = if self.lb[j].is_finite() {
            self.lb[j].abs()
        } else {
            0.0
        };
        let u = if self.ub[j].is_finite() {
            self.ub[j].abs()
        } else {
            0.0
        };
        EPS * 1.0_f64.max(l.max(u))
    }

    /// Phase-1 costs: ±1 on out-of-bounds basic variables. Returns the
    /// total violation (0 ⇒ primal feasible).
    fn infeasibility(&self) -> (f64, Vec<f64>) {
        let mut c = vec![0.0; self.m];
        let mut total = 0.0;
        for (slot, &var) in self.basis.iter().enumerate() {
            let x = self.xb[slot];
            let tol = self.ftol(var);
            if x < self.lb[var] - tol {
                c[slot] = -1.0;
                total += self.lb[var] - x;
            } else if x > self.ub[var] + tol {
                c[slot] = 1.0;
                total += x - self.ub[var];
            }
        }
        (total, c)
    }

    /// Duals `y = c_B B⁻¹` for an arbitrary basic-cost vector.
    fn duals(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (slot, &cbi) in cb.iter().enumerate() {
            if cbi == 0.0 {
                continue;
            }
            for k in 0..m {
                y[k] += cbi * self.binv[slot * m + k];
            }
        }
        y
    }

    /// Reduced cost of nonbasic variable `j` given duals `y`.
    #[inline]
    fn reduced_cost(&self, j: usize, y: &[f64], phase2: bool) -> f64 {
        let mut d = if phase2 { self.cost[j] } else { 0.0 };
        for (row, coef) in self.col(j) {
            d -= y[row as usize] * coef;
        }
        d
    }

    /// `w = B⁻¹ a_q`.
    fn ftran(&self, q: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for (row, coef) in self.col(q) {
            let r = row as usize;
            for i in 0..m {
                w[i] += self.binv[i * m + r] * coef;
            }
        }
        w
    }

    /// Entering-candidate scan. Returns `(j, dir)` with `dir = +1`
    /// (increase from lower / free) or `−1` (decrease from upper / free).
    fn price(&self, y: &[f64], phase2: bool, bland: bool) -> Option<(usize, f64)> {
        let tol = EPS * 10.0;
        let mut best: Option<(usize, f64, f64)> = None; // (j, score, dir)
        for j in 0..self.n_total {
            let (can_up, can_down) = match self.status[j] {
                Status::Basic(_) => continue,
                Status::AtLower => (true, false),
                Status::AtUpper => (false, true),
                Status::Free => (true, true),
            };
            // Fixed variables can never move.
            if self.ub[j] - self.lb[j] < EPS && self.lb[j].is_finite() {
                continue;
            }
            let d = self.reduced_cost(j, y, phase2);
            let (score, dir) = if can_up && d < -tol {
                (-d, 1.0)
            } else if can_down && d > tol {
                (d, -1.0)
            } else {
                continue;
            };
            if bland {
                // Bland's rule: first (smallest-index) eligible variable.
                return Some((j, dir));
            }
            if best.is_none_or(|(_, s, _)| score > s) {
                best = Some((j, score, dir));
            }
        }
        best.map(|(j, _, dir)| (j, dir))
    }

    /// Ratio test for entering variable `q` moving in direction `dir`.
    ///
    /// Returns the step length, and either a blocking basic slot (plus
    /// the bound it hits) or `None` when the entering variable's own
    /// opposite bound is the limit (a bound flip). `f64::INFINITY` step
    /// ⇒ unbounded direction.
    fn ratio_test(
        &self,
        q: usize,
        dir: f64,
        w: &[f64],
        bland: bool,
    ) -> (f64, Option<(usize, bool)>) {
        // Flip length of the entering variable itself.
        let mut t_best = if self.lb[q].is_finite() && self.ub[q].is_finite() {
            self.ub[q] - self.lb[q]
        } else {
            f64::INFINITY
        };
        let mut blocker: Option<(usize, bool)> = None; // (slot, hits_upper)
        let mut blocker_rate = 0.0_f64;

        for slot in 0..self.m {
            let var = self.basis[slot];
            let rate = -dir * w[slot]; // d x_B[slot] / d t
            if rate.abs() <= EPS {
                continue;
            }
            let x = self.xb[slot];
            let tol = self.ftol(var);
            let below = x < self.lb[var] - tol;
            let above = x > self.ub[var] + tol;
            let (limit, hits_upper) = if below {
                // Infeasible below: only a *rising* value hits a
                // breakpoint (its lower bound). Falling values are
                // penalized by phase-1 costs, not blocked.
                if rate > 0.0 {
                    ((self.lb[var] - x) / rate, false)
                } else {
                    continue;
                }
            } else if above {
                if rate < 0.0 {
                    ((x - self.ub[var]) / -rate, true)
                } else {
                    continue;
                }
            } else if rate < 0.0 {
                if self.lb[var].is_finite() {
                    ((x - self.lb[var]) / -rate, false)
                } else {
                    continue;
                }
            } else {
                if self.ub[var].is_finite() {
                    ((self.ub[var] - x) / rate, true)
                } else {
                    continue;
                }
            };
            let limit = limit.max(0.0);
            let better = if bland {
                limit < t_best - EPS
                    || (limit < t_best + EPS
                        && blocker.is_none_or(|(s, _)| self.basis[slot] < self.basis[s]))
            } else {
                limit < t_best - EPS
                    || (limit < t_best + EPS && blocker.is_some() && rate.abs() > blocker_rate)
                    || (limit < t_best + EPS && blocker.is_none() && limit < t_best)
            };
            if better {
                t_best = limit;
                blocker = Some((slot, hits_upper));
                blocker_rate = rate.abs();
            }
        }
        (t_best, blocker)
    }

    /// Apply a bound flip of entering variable `q` over step `t`.
    fn apply_flip(&mut self, q: usize, dir: f64, t: f64, w: &[f64]) {
        for slot in 0..self.m {
            self.xb[slot] += -dir * w[slot] * t;
        }
        if dir > 0.0 {
            self.status[q] = Status::AtUpper;
            self.xn[q] = self.ub[q];
        } else {
            self.status[q] = Status::AtLower;
            self.xn[q] = self.lb[q];
        }
    }

    /// Pivot `q` into the basis at `slot`, sending the leaving variable
    /// to the bound indicated by `leaves_upper`.
    fn apply_pivot(
        &mut self,
        q: usize,
        dir: f64,
        t: f64,
        w: &[f64],
        slot: usize,
        leaves_upper: bool,
    ) -> bool {
        let entering_start = match self.status[q] {
            Status::AtLower => self.lb[q],
            Status::AtUpper => self.ub[q],
            Status::Free => 0.0,
            Status::Basic(_) => unreachable!("entering variable is nonbasic"),
        };
        // Update basic values.
        for s in 0..self.m {
            self.xb[s] += -dir * w[s] * t;
        }
        let leaving = self.basis[slot];
        self.status[leaving] = if leaves_upper {
            Status::AtUpper
        } else {
            Status::AtLower
        };
        self.xn[leaving] = if leaves_upper {
            self.ub[leaving]
        } else {
            self.lb[leaving]
        };

        self.basis[slot] = q;
        self.status[q] = Status::Basic(slot as u32);
        self.xb[slot] = entering_start + dir * t;

        // Eta update of B⁻¹, or a full refactorization on schedule /
        // tiny pivot element.
        let piv = w[slot];
        self.pivots_since_refactor += 1;
        if piv.abs() < 1e-9 || self.pivots_since_refactor >= self.refactor_interval {
            if !self.refactor() {
                return false;
            }
            self.recompute_xb();
        } else {
            let m = self.m;
            let inv_piv = 1.0 / piv;
            for k in 0..m {
                self.binv[slot * m + k] *= inv_piv;
            }
            for i in 0..m {
                if i == slot {
                    continue;
                }
                let f = w[i];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[slot * m + k];
                }
            }
        }
        true
    }

    fn current_objective(&self) -> f64 {
        let mut obj = 0.0;
        for j in 0..self.n_total {
            match self.status[j] {
                Status::Basic(slot) => obj += self.cost[j] * self.xb[slot as usize],
                _ => obj += self.cost[j] * self.xn[j],
            }
        }
        obj
    }

    /// Rows whose activity lies outside their bounds at the current
    /// (phase-1-optimal) point — the infeasibility diagnostic.
    fn violated_rows(&self) -> Vec<u32> {
        let x = self.extract_solution();
        let mut activity = vec![0.0; self.m];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for &(row, coef) in &self.form.cols[j] {
                activity[row as usize] += coef * xj;
            }
        }
        let mut out = Vec::new();
        for (i, act) in activity.iter().enumerate() {
            let scale = 1.0_f64.max(act.abs());
            if *act < self.form.row_lo[i] - EPS * scale || *act > self.form.row_hi[i] + EPS * scale
            {
                out.push(i as u32);
            }
        }
        out
    }

    fn extract_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.form.n];
        for (j, item) in x.iter_mut().enumerate() {
            *item = match self.status[j] {
                Status::Basic(slot) => self.xb[slot as usize],
                _ => self.xn[j],
            };
        }
        x
    }

    fn solve(&mut self, max_iterations: u64) -> LpStatus {
        let mut last_obj = f64::INFINITY;
        loop {
            if self.iterations >= max_iterations {
                return LpStatus::IterationLimit;
            }
            let (violation, phase1_costs) = self.infeasibility();
            let phase2 = violation <= 0.0;
            let bland = self.stall >= STALL_LIMIT;

            let cb: Vec<f64> = if phase2 {
                self.basis.iter().map(|&v| self.cost[v]).collect()
            } else {
                phase1_costs
            };
            let y = self.duals(&cb);

            // --- pricing (with flip batching: reuse `y` across flips) ---
            let mut progressed = false;
            loop {
                let Some((q, dir)) = self.price(&y, phase2, bland) else {
                    break;
                };
                let w = self.ftran(q);
                let (t, blocker) = self.ratio_test(q, dir, &w, bland);
                self.iterations += 1;
                if t.is_infinite() {
                    return if phase2 {
                        LpStatus::Unbounded
                    } else {
                        LpStatus::Infeasible
                    };
                }
                match blocker {
                    None => {
                        // Bound flip: basis (and duals) unchanged — keep
                        // using the same y for the next candidate.
                        self.apply_flip(q, dir, t, &w);
                        progressed = true;
                        if self.iterations >= max_iterations {
                            return LpStatus::IterationLimit;
                        }
                        if !phase2 || !self.flip_batching {
                            // Phase 1: violations may have changed sign
                            // structure — recompute costs. Ablation:
                            // without batching, re-price from scratch
                            // after every flip.
                            break;
                        }
                        continue;
                    }
                    Some((slot, leaves_upper)) => {
                        if !self.apply_pivot(q, dir, t, &w, slot, leaves_upper) {
                            // Singular basis after pivot: refactor failed.
                            return LpStatus::IterationLimit;
                        }
                        progressed = true;
                        break;
                    }
                }
            }

            if !progressed {
                // No entering candidate: optimal or (still) infeasible.
                // Confirm with fresh numbers before declaring.
                if self.pivots_since_refactor > 0 {
                    if !self.refactor() {
                        return LpStatus::IterationLimit;
                    }
                    self.recompute_xb();
                }
                let (violation, _) = self.infeasibility();
                if violation > 0.0 {
                    return if phase2 {
                        // We were in phase 2 on stale numbers; loop again
                        // to run phase 1 on fresh ones.
                        continue;
                    } else {
                        LpStatus::Infeasible
                    };
                }
                if !phase2 {
                    // Phase 1 finished; run phase 2.
                    continue;
                }
                let x = self.extract_solution();
                let internal: f64 = self.form.obj_min.iter().zip(&x).map(|(c, xi)| c * xi).sum();
                return LpStatus::Optimal {
                    x,
                    objective: self.form.model_objective(internal),
                };
            }

            // Stall detection for Bland fallback.
            let obj = if phase2 {
                self.current_objective()
            } else {
                self.infeasibility().0
            };
            if obj < last_obj - 1e-10 {
                self.stall = 0;
            } else {
                self.stall += 1;
            }
            last_obj = obj;
        }
    }
}

/// Iterator over the sparse column of a variable.
enum ColIter<'a> {
    Structural(std::slice::Iter<'a, (u32, f64)>),
    Logical(Option<u32>),
}

impl Iterator for ColIter<'_> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        match self {
            ColIter::Structural(it) => it.next().copied(),
            ColIter::Logical(row) => row.take().map(|r| (r, -1.0)),
        }
    }
}

/// Solve the LP relaxation of `form` under `bounds`.
pub fn solve_lp(form: &StandardForm, bounds: &VarBounds, opts: &LpOptions) -> LpResult {
    // Degenerate case: no rows at all — every variable sits at its
    // objective-preferred bound.
    if form.m == 0 {
        let mut x = vec![0.0; form.n];
        for j in 0..form.n {
            let c = form.obj_min[j];
            let (l, u) = (bounds.lb[j], bounds.ub[j]);
            x[j] = if c > 0.0 {
                if l.is_finite() {
                    l
                } else {
                    return LpResult {
                        status: LpStatus::Unbounded,
                        iterations: 0,
                        violated_rows: vec![],
                    };
                }
            } else if c < 0.0 {
                if u.is_finite() {
                    u
                } else {
                    return LpResult {
                        status: LpStatus::Unbounded,
                        iterations: 0,
                        violated_rows: vec![],
                    };
                }
            } else if l.is_finite() {
                l
            } else if u.is_finite() {
                u
            } else {
                0.0
            };
        }
        let internal: f64 = form.obj_min.iter().zip(&x).map(|(c, xi)| c * xi).sum();
        return LpResult {
            status: LpStatus::Optimal {
                x,
                objective: form.model_objective(internal),
            },
            iterations: 0,
            violated_rows: vec![],
        };
    }

    let mut s = Simplex::new(form, bounds, opts);
    let status = s.solve(opts.max_iterations);
    let violated_rows = if status == LpStatus::Infeasible {
        s.violated_rows()
    } else {
        vec![]
    };
    LpResult {
        status,
        iterations: s.iterations,
        violated_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::presolve::{presolve, Presolved};

    fn lp(model: &Model) -> LpStatus {
        match presolve(model) {
            Presolved::Infeasible => LpStatus::Infeasible,
            Presolved::Ready(form, bounds) => {
                solve_lp(
                    &form,
                    &bounds,
                    &LpOptions {
                        max_iterations: 100_000,
                        ..LpOptions::default()
                    },
                )
                .status
            }
        }
    }

    fn assert_optimal(status: &LpStatus, expect_obj: f64) -> Vec<f64> {
        match status {
            LpStatus::Optimal { x, objective } => {
                assert!(
                    (objective - expect_obj).abs() < 1e-6,
                    "objective {objective} != expected {expect_obj}"
                );
                x.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_two_variable_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 5.0);
        m.add_le(vec![(x, 1.0)], 4.0);
        m.add_le(vec![(y, 2.0)], 12.0);
        m.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        m.set_sense(Sense::Maximize);
        let sol = assert_optimal(&lp(&m), 36.0);
        assert!((sol[0] - 2.0).abs() < 1e-6);
        assert!((sol[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7, y=3, obj 23.
        let mut m = Model::new();
        let x = m.add_var(2.0, f64::INFINITY, 2.0);
        let y = m.add_var(3.0, f64::INFINITY, 3.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
        m.set_sense(Sense::Minimize);
        let sol = assert_optimal(&lp(&m), 23.0);
        assert!((sol[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn range_row_binds_on_both_sides() {
        // max x + y s.t. 4 ≤ x + 2y ≤ 6, 0 ≤ x,y ≤ 3 → x=3, y=1.5, obj 4.5.
        let mut m = Model::new();
        let x = m.add_var(0.0, 3.0, 1.0);
        let y = m.add_var(0.0, 3.0, 1.0);
        m.add_range(vec![(x, 1.0), (y, 2.0)], 4.0, 6.0);
        m.set_sense(Sense::Maximize);
        assert_optimal(&lp(&m), 4.5);

        // min x + y over the same region → x=0, y=2, obj 2.
        let mut m2 = Model::new();
        let x = m2.add_var(0.0, 3.0, 1.0);
        let y = m2.add_var(0.0, 3.0, 1.0);
        m2.add_range(vec![(x, 1.0), (y, 2.0)], 4.0, 6.0);
        m2.set_sense(Sense::Minimize);
        assert_optimal(&lp(&m2), 2.0);
    }

    #[test]
    fn equality_constraint() {
        // min x − y s.t. x + y = 5, 0 ≤ x,y ≤ 4 → x=1, y=4, obj −3.
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, 1.0);
        let y = m.add_var(0.0, 4.0, -1.0);
        m.add_eq(vec![(x, 1.0), (y, 1.0)], 5.0);
        m.set_sense(Sense::Minimize);
        let sol = assert_optimal(&lp(&m), -3.0);
        assert!((sol[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_system_detected() {
        // x + y ≤ 1 and x + y ≥ 3 with x,y ≥ 0.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, 0.0);
        let y = m.add_var(0.0, f64::INFINITY, 0.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 1.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        assert_eq!(lp(&m), LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x s.t. x ≥ 0 with a vacuous row keeping m ≥ 1.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, 1.0, 0.0);
        m.add_le(vec![(x, -1.0), (y, 1.0)], 5.0);
        m.set_sense(Sense::Maximize);
        assert_eq!(lp(&m), LpStatus::Unbounded);
    }

    #[test]
    fn no_rows_fast_path() {
        let mut m = Model::new();
        let _x = m.add_var(1.0, 2.0, 5.0);
        let _y = m.add_var(-1.0, 3.0, -2.0);
        m.set_sense(Sense::Maximize);
        // max 5x − 2y → x=2, y=−1 → 12.
        let sol = assert_optimal(&lp(&m), 12.0);
        assert_eq!(sol, vec![2.0, -1.0]);
    }

    #[test]
    fn no_rows_unbounded() {
        let mut m = Model::new();
        m.add_var(0.0, f64::INFINITY, 1.0);
        m.set_sense(Sense::Maximize);
        assert_eq!(lp(&m), LpStatus::Unbounded);
    }

    #[test]
    fn free_variable_enters_in_both_directions() {
        // min x s.t. x + y = 2, y ∈ [0, 1], x free → x = 1 at y = 1.
        let mut m = Model::new();
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, 1.0, 0.0);
        m.add_eq(vec![(x, 1.0), (y, 1.0)], 2.0);
        m.set_sense(Sense::Minimize);
        assert_optimal(&lp(&m), 1.0);

        // max x over the same region → x = 2 at y = 0.
        let mut m2 = Model::new();
        let x = m2.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = m2.add_var(0.0, 1.0, 0.0);
        m2.add_eq(vec![(x, 1.0), (y, 1.0)], 2.0);
        m2.set_sense(Sense::Maximize);
        assert_optimal(&lp(&m2), 2.0);
    }

    #[test]
    fn fractional_knapsack_relaxation() {
        // Classic fractional knapsack: items (value, weight):
        // (60, 10), (100, 20), (120, 30); capacity 50.
        // LP optimum takes items 1, 2 fully and 2/3 of item 3 → 240.
        let mut m = Model::new();
        let a = m.add_var(0.0, 1.0, 60.0);
        let b = m.add_var(0.0, 1.0, 100.0);
        let c = m.add_var(0.0, 1.0, 120.0);
        m.add_le(vec![(a, 10.0), (b, 20.0), (c, 30.0)], 50.0);
        m.set_sense(Sense::Maximize);
        let sol = assert_optimal(&lp(&m), 240.0);
        assert!((sol[2] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn many_variables_few_rows_stress() {
        // max Σ v_i x_i s.t. Σ w_i x_i ≤ W, Σ x_i ≤ K, x ∈ [0,1]:
        // verify against a greedy-by-density fractional solution on a
        // deterministic instance.
        let n = 2000;
        let mut m = Model::new();
        let mut vars = Vec::new();
        for i in 0..n {
            let v = ((i * 37) % 101) as f64 + 1.0;
            vars.push((m.add_var(0.0, 1.0, v), v, ((i * 53) % 29) as f64 + 1.0));
        }
        let wrow: Vec<(crate::VarId, f64)> = vars.iter().map(|(id, _, w)| (*id, *w)).collect();
        let crow: Vec<(crate::VarId, f64)> = vars.iter().map(|(id, _, _)| (*id, 1.0)).collect();
        m.add_le(wrow, 400.0);
        m.add_le(crow, 60.0);
        m.set_sense(Sense::Maximize);
        match lp(&m) {
            LpStatus::Optimal { x, objective } => {
                assert!(objective > 0.0);
                // Primal feasibility of the reported solution.
                let w: f64 = x.iter().zip(&vars).map(|(xi, (_, _, wi))| xi * wi).sum();
                let c: f64 = x.iter().sum();
                assert!(w <= 400.0 + 1e-5, "weight {w}");
                assert!(c <= 60.0 + 1e-5, "count {c}");
                // At most 2 fractional values (m = 2 rows).
                let frac = x.iter().filter(|v| (*v - v.round()).abs() > 1e-6).count();
                assert!(frac <= 2, "{frac} fractional values");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_costs_flip_to_upper_bounds() {
        // min −x − 2y with x,y ∈ [0,5] and x + y ≤ 7 → (2,5) or (5,2)?
        // −x − 2y minimized: prefer y=5 then x=2 → −12.
        let mut m = Model::new();
        let x = m.add_var(0.0, 5.0, -1.0);
        let y = m.add_var(0.0, 5.0, -2.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 7.0);
        m.set_sense(Sense::Minimize);
        let sol = assert_optimal(&lp(&m), -12.0);
        assert!((sol[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, 2.0);
        let y = m.add_var(3.0, f64::INFINITY, 3.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
        m.set_sense(Sense::Minimize);
        match presolve(&m) {
            Presolved::Ready(form, bounds) => {
                let r = solve_lp(
                    &form,
                    &bounds,
                    &LpOptions {
                        max_iterations: 0,
                        ..LpOptions::default()
                    },
                );
                assert_eq!(r.status, LpStatus::IterationLimit);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
