//! Solver resource budgets.
//!
//! The paper configures CPLEX with a working-memory cap, a one-hour time
//! limit, and lets the OS kill runaway solves (§5.1). [`SolverConfig`]
//! exposes the equivalent knobs; exceeding any budget aborts the solve
//! with a resource-limit outcome rather than an answer, which is exactly
//! the DIRECT failure mode studied in the experiments.

use std::time::Duration;

/// Resource budgets and tolerances for a MILP solve.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Wall-clock limit for one `solve` call.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes explored.
    pub node_limit: u64,
    /// Maximum total simplex iterations across all LP solves.
    pub iteration_limit: u64,
    /// Memory budget in bytes for the model plus the open-node store;
    /// emulates CPLEX's working-memory limit.
    pub memory_limit: usize,
    /// Relative MILP gap at which the search stops declaring optimality
    /// (`0.0` = prove true optimality).
    pub relative_gap: f64,
    /// How many simplex pivots between full basis refactorizations.
    pub refactor_interval: u32,
    /// Presolve ablation: fold single-variable rows into variable
    /// bounds. On real workloads this keeps the sketch query's
    /// per-group cardinality caps out of the simplex basis; disable
    /// only to measure that design choice.
    pub fold_singletons: bool,
    /// Simplex ablation: amortize one dual vector across consecutive
    /// profitable bound flips. Disable only to measure that design
    /// choice.
    pub flip_batching: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: Duration::from_secs(3600),
            node_limit: 2_000_000,
            iteration_limit: u64::MAX,
            memory_limit: 512 * 1024 * 1024,
            relative_gap: 0.0,
            refactor_interval: 64,
            fold_singletons: true,
            flip_batching: true,
        }
    }
}

impl SolverConfig {
    /// The paper's CPLEX setup: 512 MB working memory, one hour limit,
    /// optimality emphasis (zero gap).
    pub fn paper_defaults() -> Self {
        SolverConfig::default()
    }

    /// A deliberately small budget used by experiments to reproduce
    /// solver failures on oversized DIRECT instances.
    pub fn constrained(time: Duration, memory: usize) -> Self {
        SolverConfig {
            time_limit: time,
            memory_limit: memory,
            ..SolverConfig::default()
        }
    }

    /// Builder-style time limit.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.time_limit = d;
        self
    }

    /// Builder-style node limit.
    pub fn with_node_limit(mut self, n: u64) -> Self {
        self.node_limit = n;
        self
    }

    /// Builder-style memory limit.
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = bytes;
        self
    }

    /// Builder-style relative gap.
    pub fn with_relative_gap(mut self, gap: f64) -> Self {
        self.relative_gap = gap;
        self
    }

    /// Builder-style presolve-folding ablation switch.
    pub fn with_fold_singletons(mut self, on: bool) -> Self {
        self.fold_singletons = on;
        self
    }

    /// Builder-style flip-batching ablation switch.
    pub fn with_flip_batching(mut self, on: bool) -> Self {
        self.flip_batching = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SolverConfig::paper_defaults();
        assert_eq!(c.time_limit, Duration::from_secs(3600));
        assert_eq!(c.memory_limit, 512 * 1024 * 1024);
        assert_eq!(c.relative_gap, 0.0);
    }

    #[test]
    fn builders_compose() {
        let c = SolverConfig::default()
            .with_time_limit(Duration::from_millis(10))
            .with_node_limit(5)
            .with_memory_limit(1024)
            .with_relative_gap(0.01);
        assert_eq!(c.time_limit, Duration::from_millis(10));
        assert_eq!(c.node_limit, 5);
        assert_eq!(c.memory_limit, 1024);
        assert_eq!(c.relative_gap, 0.01);
    }
}
