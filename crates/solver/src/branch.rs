//! Branch-and-bound MILP solver.
//!
//! Explores a best-bound search tree over the LP relaxation from
//! [`crate::simplex`]. Each node stores only its bound-change diffs from
//! the root, so memory stays proportional to the open-node frontier —
//! and the configured memory budget turns frontier blow-up into the
//! same out-of-memory failure the paper observes for CPLEX (§3.2, §5.2.1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use crate::config::SolverConfig;
use crate::model::Model;
use crate::presolve::{presolve_opts, Presolved, StandardForm, VarBounds};
use crate::simplex::{solve_lp, LpOptions, LpStatus};
use crate::solution::{LimitKind, Solution, SolveOutcome, SolveResult, SolveStats};
use crate::telemetry::Telemetry;
use crate::INT_EPS;

/// A bound change relative to the root relaxation: variable, which side,
/// new value.
#[derive(Debug, Clone, Copy)]
struct BoundDiff {
    var: u32,
    upper: bool,
    value: f64,
}

/// An open node: parent LP bound (internal minimization form) plus the
/// diff chain from the root.
struct Node {
    bound: f64,
    depth: u32,
    diffs: Vec<BoundDiff>,
}

impl Node {
    /// Estimated bytes this open node pins. Besides the diff chain we
    /// charge a flat 1 KiB per node for the warm-start state (basis
    /// snapshot, pseudo-costs) a production solver keeps per open node —
    /// this is what makes frontier blow-up hit the memory budget the
    /// way it hits CPLEX's working memory in the paper's experiments.
    fn memory_estimate(&self) -> usize {
        std::mem::size_of::<Node>() + self.diffs.len() * std::mem::size_of::<BoundDiff>() + 1024
    }
}

// Min-heap on `bound` (best-bound-first for minimization).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: smallest bound (best for minimization) first;
        // tie-break on depth so deeper nodes (closer to integrality)
        // surface earlier.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

/// The MILP solver: a [`SolverConfig`] plus optional shared
/// [`Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct MilpSolver {
    config: SolverConfig,
    telemetry: Option<Arc<Telemetry>>,
}

impl MilpSolver {
    /// A solver with the given budgets.
    pub fn new(config: SolverConfig) -> Self {
        MilpSolver {
            config,
            telemetry: None,
        }
    }

    /// Attach a shared telemetry sink; every solve reports its counters
    /// there (used by the evaluation engine to count black-box calls).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Solve `model` to proven optimality (within the configured gap) or
    /// until a resource budget expires.
    pub fn solve(&self, model: &Model) -> SolveResult {
        let started = Instant::now();
        let mut stats = SolveStats::default();
        let result = self.solve_inner(model, started, &mut stats);
        stats.wall_time = started.elapsed();
        if let Some(t) = &self.telemetry {
            t.record(&stats, &result);
        }
        SolveResult {
            outcome: result,
            stats,
        }
    }

    fn solve_inner(&self, model: &Model, started: Instant, stats: &mut SolveStats) -> SolveOutcome {
        let (form, root_bounds) = match presolve_opts(model, self.config.fold_singletons) {
            Presolved::Infeasible => return SolveOutcome::Infeasible,
            Presolved::Ready(form, bounds) => (form, bounds),
        };

        let mut search = Search {
            cfg: &self.config,
            form: &form,
            model,
            working: root_bounds.clone(),
            pristine: root_bounds,
            touched: Vec::new(),
            incumbent: None,
            started,
            stats,
        };
        search.run()
    }
}

/// Incumbent: internal-minimization objective plus structural values.
struct Incumbent {
    internal: f64,
    values: Vec<f64>,
}

struct Search<'a> {
    cfg: &'a SolverConfig,
    form: &'a StandardForm,
    model: &'a Model,
    working: VarBounds,
    pristine: VarBounds,
    /// Variables whose working bounds differ from pristine.
    touched: Vec<u32>,
    incumbent: Option<Incumbent>,
    started: Instant,
    stats: &'a mut SolveStats,
}

impl Search<'_> {
    fn run(&mut self) -> SolveOutcome {
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        heap.push(Node {
            bound: f64::NEG_INFINITY,
            depth: 0,
            diffs: Vec::new(),
        });
        let mut open_bytes = 0usize;
        let base_bytes = self.model.memory_estimate() + self.form.n * 32;

        while let Some(node) = heap.pop() {
            open_bytes = open_bytes.saturating_sub(node.memory_estimate());

            // --- budget checks -------------------------------------------------
            if self.started.elapsed() > self.cfg.time_limit {
                return self.abort(LimitKind::Time, &heap, &node);
            }
            if self.stats.nodes >= self.cfg.node_limit {
                return self.abort(LimitKind::Nodes, &heap, &node);
            }
            if self.stats.simplex_iterations >= self.cfg.iteration_limit {
                return self.abort(LimitKind::Iterations, &heap, &node);
            }
            let mem = base_bytes + open_bytes + node.memory_estimate();
            self.stats.peak_memory_estimate = self.stats.peak_memory_estimate.max(mem);
            if mem > self.cfg.memory_limit {
                return self.abort(LimitKind::Memory, &heap, &node);
            }

            // --- global-bound pruning / gap termination ------------------------
            if let Some(inc) = &self.incumbent {
                if self.gap(inc.internal, node.bound) <= self.cfg.relative_gap {
                    // Best-bound order ⇒ every remaining node is within
                    // the gap too: the incumbent is (gap-)optimal.
                    return SolveOutcome::Optimal(self.to_solution(inc));
                }
            }

            // --- solve the node LP ---------------------------------------------
            self.stats.nodes += 1;
            self.load_node(&node);
            let remaining_iters = self
                .cfg
                .iteration_limit
                .saturating_sub(self.stats.simplex_iterations);
            let lp = solve_lp(
                self.form,
                &self.working,
                &LpOptions {
                    max_iterations: remaining_iters,
                    refactor_interval: self.cfg.refactor_interval,
                    flip_batching: self.cfg.flip_batching,
                },
            );
            self.stats.simplex_iterations += lp.iterations;
            self.stats.lp_solves += 1;

            let (x, model_obj) = match lp.status {
                LpStatus::Infeasible => {
                    // Surface the infeasibility diagnostic (the §4.4
                    // strategy-3 input): union of violated rows across
                    // every infeasible node relaxation. Even when the
                    // root is feasible, the rows that keep failing down
                    // the tree identify the conflicting constraints.
                    for row in lp.violated_rows {
                        if !self.stats.root_infeasible_rows.contains(&row) {
                            self.stats.root_infeasible_rows.push(row);
                        }
                    }
                    continue;
                }
                LpStatus::Unbounded => {
                    // A child region is a subset of the root region, so
                    // unboundedness is a root property.
                    return SolveOutcome::Unbounded;
                }
                LpStatus::IterationLimit => return self.abort(LimitKind::Iterations, &heap, &node),
                LpStatus::Optimal { x, objective } => (x, objective),
            };
            let internal = model_obj * self.form.obj_factor;

            // Bound-based pruning against the incumbent.
            if let Some(inc) = &self.incumbent {
                if internal >= inc.internal - 1e-9 {
                    continue;
                }
            }

            // --- integrality ----------------------------------------------------
            match self.most_fractional(&x) {
                None => {
                    // Integral: new incumbent.
                    let snapped = self.snap(&x);
                    let sn_internal: f64 = self
                        .form
                        .obj_min
                        .iter()
                        .zip(&snapped)
                        .map(|(c, xi)| c * xi)
                        .sum();
                    if self
                        .incumbent
                        .as_ref()
                        .is_none_or(|inc| sn_internal < inc.internal)
                    {
                        self.incumbent = Some(Incumbent {
                            internal: sn_internal,
                            values: snapped,
                        });
                    }
                }
                Some((j, xj)) => {
                    // Rounding heuristic: nearest-integer snap, accepted
                    // only if model-feasible.
                    self.try_rounding(&x);

                    // Branch.
                    let mut down = node.diffs.clone();
                    down.push(BoundDiff {
                        var: j as u32,
                        upper: true,
                        value: xj.floor(),
                    });
                    let mut up = node.diffs.clone();
                    up.push(BoundDiff {
                        var: j as u32,
                        upper: false,
                        value: xj.ceil(),
                    });
                    for diffs in [down, up] {
                        let child = Node {
                            bound: internal,
                            depth: node.depth + 1,
                            diffs,
                        };
                        open_bytes += child.memory_estimate();
                        heap.push(child);
                    }
                }
            }
        }

        match self.incumbent.take() {
            Some(inc) => SolveOutcome::Optimal(self.to_solution(&inc)),
            None => SolveOutcome::Infeasible,
        }
    }

    /// Relative optimality gap between incumbent and a bound (internal
    /// minimization form).
    fn gap(&self, incumbent: f64, bound: f64) -> f64 {
        if bound == f64::NEG_INFINITY {
            return f64::INFINITY;
        }
        (incumbent - bound).max(0.0) / 1.0_f64.max(incumbent.abs())
    }

    fn abort(&mut self, limit: LimitKind, heap: &BinaryHeap<Node>, current: &Node) -> SolveOutcome {
        if limit == LimitKind::Memory {
            // Memory exhaustion kills the solver process in the paper's
            // setup ("the operating system would kill the solver
            // whenever it uses the entire available main memory",
            // §5.1) — no incumbent survives, unlike a time limit.
            return SolveOutcome::ResourceExhausted(limit);
        }
        match self.incumbent.take() {
            Some(inc) => {
                let best_bound = heap
                    .peek()
                    .map(|n| n.bound)
                    .unwrap_or(current.bound)
                    .min(current.bound);
                SolveOutcome::Feasible {
                    gap: self.gap(inc.internal, best_bound),
                    best: self.to_solution(&inc),
                    limit,
                }
            }
            None => SolveOutcome::ResourceExhausted(limit),
        }
    }

    fn to_solution(&self, inc: &Incumbent) -> Solution {
        Solution {
            objective: self.form.model_objective(inc.internal),
            values: inc.values.clone(),
        }
    }

    /// Restore pristine bounds for previously-touched variables, then
    /// apply the node's diff chain.
    fn load_node(&mut self, node: &Node) {
        for &v in &self.touched {
            let j = v as usize;
            self.working.lb[j] = self.pristine.lb[j];
            self.working.ub[j] = self.pristine.ub[j];
        }
        self.touched.clear();
        for d in &node.diffs {
            let j = d.var as usize;
            if d.upper {
                self.working.ub[j] = self.working.ub[j].min(d.value);
            } else {
                self.working.lb[j] = self.working.lb[j].max(d.value);
            }
            self.touched.push(d.var);
        }
    }

    /// The integer variable whose LP value is most fractional, if any.
    fn most_fractional(&self, x: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        for (j, &flag) in self.form.integer.iter().enumerate() {
            if !flag {
                continue;
            }
            let frac = (x[j] - x[j].round()).abs();
            if frac <= INT_EPS {
                continue;
            }
            let score = 0.5 - (x[j].fract().abs() - 0.5).abs();
            if best.is_none_or(|(_, s, _)| score > s) {
                best = Some((j, score, x[j]));
            }
        }
        best.map(|(j, _, xj)| (j, xj))
    }

    /// Round integer variables of an assignment to the nearest integer.
    fn snap(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.form.integer)
            .map(|(v, &int)| if int { v.round() } else { *v })
            .collect()
    }

    /// Nearest-integer rounding heuristic: accept as incumbent when the
    /// rounded point is genuinely feasible for the *model*.
    fn try_rounding(&mut self, x: &[f64]) {
        let snapped = self.snap(x);
        if self.model.check_feasible(&snapped, 1e-6).is_some() {
            return;
        }
        let internal: f64 = self
            .form
            .obj_min
            .iter()
            .zip(&snapped)
            .map(|(c, xi)| c * xi)
            .sum();
        if self
            .incumbent
            .as_ref()
            .is_none_or(|inc| internal < inc.internal)
        {
            self.incumbent = Some(Incumbent {
                internal,
                values: snapped,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarId};
    use std::time::Duration;

    fn solve(model: &Model) -> SolveOutcome {
        MilpSolver::new(SolverConfig::default())
            .solve(model)
            .outcome
    }

    fn assert_optimal(outcome: &SolveOutcome, expect: f64) -> Vec<f64> {
        match outcome {
            SolveOutcome::Optimal(s) => {
                assert!(
                    (s.objective - expect).abs() < 1e-6,
                    "objective {} != {expect}",
                    s.objective
                );
                s.values.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn integer_knapsack() {
        // 0/1 knapsack: values (60,100,120), weights (10,20,30), cap 50.
        // Integer optimum picks items 2+3 → 220 (LP bound is 240).
        let mut m = Model::new();
        let a = m.add_int_var(0.0, 1.0, 60.0);
        let b = m.add_int_var(0.0, 1.0, 100.0);
        let c = m.add_int_var(0.0, 1.0, 120.0);
        m.add_le(vec![(a, 10.0), (b, 20.0), (c, 30.0)], 50.0);
        m.set_sense(Sense::Maximize);
        let x = assert_optimal(&solve(&m), 220.0);
        assert_eq!(
            x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_le(vec![(x, 2.0)], 9.0);
        m.set_sense(Sense::Maximize);
        assert_optimal(&solve(&m), 4.5);
    }

    #[test]
    fn integrality_changes_the_answer() {
        // max x with 2x ≤ 9: LP says 4.5, ILP says 4.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 10.0, 1.0);
        m.add_le(vec![(x, 2.0)], 9.0);
        m.set_sense(Sense::Maximize);
        assert_optimal(&solve(&m), 4.0);
    }

    #[test]
    fn equality_cardinality_like_package_query() {
        // The paper's running-example shape: pick exactly 3 tuples,
        // sum(kcal) in [2.0, 2.5], minimize sum(fat).
        let kcal = [0.8, 0.9, 0.5, 1.1, 0.7, 0.6];
        let fat = [1.0, 2.0, 0.2, 5.0, 0.4, 3.0];
        let mut m = Model::new();
        let vars: Vec<VarId> = fat.iter().map(|&f| m.add_int_var(0.0, 1.0, f)).collect();
        m.add_eq(vars.iter().map(|&v| (v, 1.0)).collect(), 3.0);
        m.add_range(
            vars.iter().zip(kcal).map(|(&v, k)| (v, k)).collect(),
            2.0,
            2.5,
        );
        m.set_sense(Sense::Minimize);
        // Best: tuples {0, 2, 4} → kcal 2.0, fat 1.6.
        let x = assert_optimal(&solve(&m), 1.6);
        let picked: Vec<usize> = x
            .iter()
            .enumerate()
            .filter(|(_, v)| v.round() as i64 == 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(picked, vec![0, 2, 4]);
    }

    #[test]
    fn repeat_constraint_allows_multiplicity() {
        // REPEAT 1 ⇒ x_i ∈ {0, 1, 2}: maximize value with one cheap item.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 2.0, 5.0);
        let y = m.add_int_var(0.0, 2.0, 4.0);
        m.add_le(vec![(x, 3.0), (y, 2.0)], 7.0);
        m.set_sense(Sense::Maximize);
        // Options: x=2 (obj 10, w 6) + y=0; x=1,y=2 (obj 13, w 7). → 13.
        let x = assert_optimal(&solve(&m), 13.0);
        assert_eq!(x[0].round() as i64, 1);
        assert_eq!(x[1].round() as i64, 2);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, ILP not.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 1.0, 1.0);
        m.add_range(vec![(x, 1.0)], 0.4, 0.6);
        m.set_sense(Sense::Maximize);
        assert_eq!(solve(&m), SolveOutcome::Infeasible);
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, 1.0, 0.0);
        m.add_le(vec![(x, -1.0), (y, 1.0)], 3.0);
        m.set_sense(Sense::Maximize);
        assert_eq!(solve(&m), SolveOutcome::Unbounded);
    }

    #[test]
    fn node_limit_failure_without_incumbent() {
        // Two-variable row so presolve cannot fold it away; fractional
        // target so no trivial incumbent exists at node 0.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 1.0, 1.0);
        let y = m.add_int_var(0.0, 1.0, 1.0);
        m.add_range(vec![(x, 1.0), (y, 1.0)], 0.4, 0.6);
        let solver = MilpSolver::new(SolverConfig::default().with_node_limit(0));
        match solver.solve(&m).outcome {
            SolveOutcome::ResourceExhausted(LimitKind::Nodes) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_limit_emulates_cplex_oom() {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..100)
            .map(|i| m.add_int_var(0.0, 1.0, (i % 7) as f64))
            .collect();
        m.add_le(vars.iter().map(|&v| (v, 1.0)).collect(), 50.0);
        m.set_sense(Sense::Maximize);
        let solver = MilpSolver::new(SolverConfig::default().with_memory_limit(16));
        let out = solver.solve(&m).outcome;
        assert!(
            matches!(out, SolveOutcome::ResourceExhausted(LimitKind::Memory)),
            "unexpected {out:?}"
        );
    }

    #[test]
    fn time_limit_with_incumbent_reports_feasible_or_optimal() {
        // Large-ish correlated knapsack; a tiny time limit may interrupt
        // the proof, but any found incumbent must be feasible.
        let mut m = Model::new();
        let n = 200;
        let vars: Vec<VarId> = (0..n)
            .map(|i| m.add_int_var(0.0, 1.0, 10.0 + ((i * 13) % 7) as f64))
            .collect();
        m.add_le(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 10.0 + ((i * 13) % 7) as f64 + 1.0))
                .collect(),
            (n as f64) * 2.0,
        );
        m.set_sense(Sense::Maximize);
        let solver =
            MilpSolver::new(SolverConfig::default().with_time_limit(Duration::from_millis(200)));
        let result = solver.solve(&m);
        if let Some(sol) = result.solution() {
            assert!(m.check_feasible(&sol.values, 1e-5).is_none());
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 10.0, 1.0);
        m.add_le(vec![(x, 2.0), (x, 1.0)], 9.5);
        m.set_sense(Sense::Maximize);
        let r = MilpSolver::new(SolverConfig::default()).solve(&m);
        assert!(r.stats.nodes >= 1);
        assert!(r.stats.wall_time > Duration::ZERO);
    }

    #[test]
    fn relative_gap_accepts_near_optimal() {
        let mut m = Model::new();
        let a = m.add_int_var(0.0, 1.0, 60.0);
        let b = m.add_int_var(0.0, 1.0, 100.0);
        let c = m.add_int_var(0.0, 1.0, 120.0);
        m.add_le(vec![(a, 10.0), (b, 20.0), (c, 30.0)], 50.0);
        m.set_sense(Sense::Maximize);
        // A huge gap setting must still return *some* optimal-tagged
        // feasible answer.
        let solver = MilpSolver::new(SolverConfig::default().with_relative_gap(0.5));
        match solver.solve(&m).outcome {
            SolveOutcome::Optimal(s) => {
                assert!(m.check_feasible(&s.values, 1e-6).is_none());
                assert!(s.objective >= 120.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Exhaustive reference solver for tiny integer models.
    fn brute_force(model: &Model, max_val: i64) -> Option<f64> {
        let n = model.num_vars();
        let mut best: Option<f64> = None;
        let mut assignment = vec![0.0; n];
        fn rec(
            model: &Model,
            j: usize,
            max_val: i64,
            assignment: &mut Vec<f64>,
            best: &mut Option<f64>,
        ) {
            if j == model.num_vars() {
                if model.check_feasible(assignment, 1e-9).is_none() {
                    let obj = model.objective_value(assignment);
                    let better = match (model.sense(), *best) {
                        (_, None) => true,
                        (Sense::Maximize, Some(b)) => obj > b,
                        (Sense::Minimize, Some(b)) => obj < b,
                    };
                    if better {
                        *best = Some(obj);
                    }
                }
                return;
            }
            let lo = model.var(crate::VarId(j as u32)).lb.max(0.0) as i64;
            let hi = model.var(crate::VarId(j as u32)).ub.min(max_val as f64) as i64;
            for v in lo..=hi {
                assignment[j] = v as f64;
                rec(model, j + 1, max_val, assignment, best);
            }
            assignment[j] = 0.0;
        }
        rec(model, 0, max_val, &mut assignment, &mut best);
        best
    }

    #[test]
    fn matches_brute_force_on_grid_of_small_models() {
        // Deterministic pseudo-random small models, cross-checked
        // against exhaustive enumeration.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..60 {
            let n = 2 + (next() % 4) as usize; // 2..=5 vars
            let rows = 1 + (next() % 3) as usize; // 1..=3 rows
            let mut m = Model::new();
            let vars: Vec<VarId> = (0..n)
                .map(|_| {
                    let ub = 1 + (next() % 3) as i64;
                    let obj = (next() % 21) as f64 - 10.0;
                    m.add_int_var(0.0, ub as f64, obj)
                })
                .collect();
            for _ in 0..rows {
                let terms: Vec<(VarId, f64)> = vars
                    .iter()
                    .map(|&v| (v, (next() % 11) as f64 - 5.0))
                    .collect();
                let a = (next() % 21) as f64 - 10.0;
                let b = a + (next() % 15) as f64;
                m.add_range(terms, a, b);
            }
            m.set_sense(if next() % 2 == 0 {
                Sense::Maximize
            } else {
                Sense::Minimize
            });

            let reference = brute_force(&m, 3);
            let outcome = solve(&m);
            match (reference, &outcome) {
                (None, SolveOutcome::Infeasible) => {}
                (Some(obj), SolveOutcome::Optimal(s)) => {
                    assert!(
                        (obj - s.objective).abs() < 1e-6,
                        "trial {trial}: brute force {obj} vs solver {} ({m})",
                        s.objective
                    );
                }
                (r, o) => panic!("trial {trial}: brute force {r:?} vs solver {o:?} ({m})"),
            }
        }
    }
}
