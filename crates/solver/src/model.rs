//! LP/MILP model builder.
//!
//! A [`Model`] is the solver's input: a set of variables with bounds and
//! integrality markers, a set of range constraints `L ≤ a·x ≤ U`, and a
//! linear objective. The PaQL→ILP translation (§3.1 of the paper)
//! produces exactly these models: one nonnegative integer variable per
//! tuple, one range constraint per global predicate, and the objective
//! from the `MAXIMIZE`/`MINIMIZE` clause.

use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

impl Sense {
    /// +1 for minimize, −1 for maximize — the factor converting the
    /// model objective into internal minimization form.
    pub(crate) fn min_factor(&self) -> f64 {
        match self {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        }
    }
}

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Position of the variable in the model (also in
    /// [`crate::Solution::values`]).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// Handle to a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) u32);

/// A model variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lb: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub ub: f64,
    /// Objective coefficient.
    pub obj: f64,
    /// Whether the variable must take an integer value.
    pub integer: bool,
}

/// A range constraint `lo ≤ Σ coef·x ≤ hi`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse terms as `(variable, coefficient)`; duplicate variables
    /// are summed during standardization.
    pub terms: Vec<(VarId, f64)>,
    /// Row lower bound (`f64::NEG_INFINITY` for pure `≤`).
    pub lo: f64,
    /// Row upper bound (`f64::INFINITY` for pure `≥`).
    pub hi: f64,
}

/// An LP/MILP model.
#[derive(Debug, Clone, Default)]
pub struct Model {
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
    sense: Option<Sense>,
}

impl Model {
    /// An empty model. With no explicit objective the model gets the
    /// paper's *vacuous objective* `max Σ 0·x` (§3.1, rule 4).
    pub fn new() -> Self {
        Model::default()
    }

    /// Add a continuous variable with bounds and objective coefficient.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.push_var(Variable {
            lb,
            ub,
            obj,
            integer: false,
        })
    }

    /// Add an integer variable with bounds and objective coefficient.
    pub fn add_int_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.push_var(Variable {
            lb,
            ub,
            obj,
            integer: true,
        })
    }

    fn push_var(&mut self, v: Variable) -> VarId {
        assert!(
            v.lb <= v.ub,
            "variable bounds inverted: [{}, {}]",
            v.lb,
            v.ub
        );
        assert!(!v.lb.is_nan() && !v.ub.is_nan() && v.obj.is_finite());
        let id = VarId(self.vars.len() as u32);
        self.vars.push(v);
        id
    }

    /// Add a range constraint `lo ≤ Σ coef·x ≤ hi`. A one-sided
    /// constraint uses an infinite bound on the open side; an equality
    /// uses `lo == hi`.
    pub fn add_range(&mut self, terms: Vec<(VarId, f64)>, lo: f64, hi: f64) -> ConstraintId {
        assert!(lo <= hi, "constraint bounds inverted: [{lo}, {hi}]");
        for (v, c) in &terms {
            assert!((v.0 as usize) < self.vars.len(), "unknown variable");
            assert!(c.is_finite(), "non-finite coefficient");
        }
        let id = ConstraintId(self.constraints.len() as u32);
        self.constraints.push(Constraint { terms, lo, hi });
        id
    }

    /// Add `Σ coef·x ≤ hi`.
    pub fn add_le(&mut self, terms: Vec<(VarId, f64)>, hi: f64) -> ConstraintId {
        self.add_range(terms, f64::NEG_INFINITY, hi)
    }

    /// Add `Σ coef·x ≥ lo`.
    pub fn add_ge(&mut self, terms: Vec<(VarId, f64)>, lo: f64) -> ConstraintId {
        self.add_range(terms, lo, f64::INFINITY)
    }

    /// Add `Σ coef·x = rhs`.
    pub fn add_eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConstraintId {
        self.add_range(terms, rhs, rhs)
    }

    /// Set the optimization direction. Objective coefficients live on
    /// the variables (set at `add_var` time or via
    /// [`Model::set_obj_coef`]).
    pub fn set_sense(&mut self, sense: Sense) {
        self.sense = Some(sense);
    }

    /// Overwrite a variable's objective coefficient.
    pub fn set_obj_coef(&mut self, var: VarId, coef: f64) {
        assert!(coef.is_finite());
        self.vars[var.index()].obj = coef;
    }

    /// Tighten a variable's bounds (intersection with existing bounds).
    /// Returns `false` if the intersection is empty (model infeasible).
    pub fn tighten_bounds(&mut self, var: VarId, lb: f64, ub: f64) -> bool {
        let v = &mut self.vars[var.index()];
        v.lb = v.lb.max(lb);
        v.ub = v.ub.min(ub);
        v.lb <= v.ub
    }

    /// The optimization sense; defaults to the vacuous
    /// `Maximize Σ 0·x` when unset.
    pub fn sense(&self) -> Sense {
        self.sense.unwrap_or(Sense::Maximize)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable accessor.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// All variables.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Indices of the integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Objective value of an assignment under the model's sense-free
    /// objective (`Σ obj_j · x_j`).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xi)| v.obj * xi).sum()
    }

    /// Check an assignment against all bounds and constraints with
    /// tolerance `tol`. Returns the first violation, if any.
    pub fn check_feasible(&self, x: &[f64], tol: f64) -> Option<String> {
        if x.len() != self.vars.len() {
            return Some(format!(
                "assignment has {} values for {} variables",
                x.len(),
                self.vars.len()
            ));
        }
        for (i, (v, xi)) in self.vars.iter().zip(x).enumerate() {
            if *xi < v.lb - tol || *xi > v.ub + tol {
                return Some(format!("x{} = {} outside [{}, {}]", i, xi, v.lb, v.ub));
            }
            if v.integer && (xi - xi.round()).abs() > crate::INT_EPS {
                return Some(format!("x{i} = {xi} not integral"));
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            let lhs: f64 = c.terms.iter().map(|(v, coef)| coef * x[v.index()]).sum();
            // Scale the tolerance with the row magnitude so large-sum
            // rows are not spuriously flagged.
            let scale = 1.0_f64.max(lhs.abs());
            if lhs < c.lo - tol * scale || lhs > c.hi + tol * scale {
                return Some(format!(
                    "constraint {} value {} outside [{}, {}]",
                    ci, lhs, c.lo, c.hi
                ));
            }
        }
        None
    }

    /// Rough memory footprint estimate of the model in bytes, used for
    /// the CPLEX-style memory budget emulation.
    pub fn memory_estimate(&self) -> usize {
        let var_bytes = self.vars.len() * std::mem::size_of::<Variable>();
        let term_bytes: usize = self
            .constraints
            .iter()
            .map(|c| c.terms.len() * std::mem::size_of::<(VarId, f64)>())
            .sum();
        var_bytes + term_bytes
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?} model: {} vars ({} integer), {} constraints",
            self.sense(),
            self.num_vars(),
            self.vars.iter().filter(|v| v.integer).count(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 5.0, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, -2.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        m.set_sense(Sense::Maximize);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.integer_vars(), vec![x]);
        assert_eq!(m.objective_value(&[2.0, 1.0]), 0.0);
    }

    #[test]
    fn default_sense_is_vacuous_maximize() {
        let m = Model::new();
        assert_eq!(m.sense(), Sense::Maximize);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_panic() {
        Model::new().add_var(1.0, 0.0, 0.0);
    }

    #[test]
    fn check_feasible_reports_violations() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 10.0, 1.0);
        m.add_range(vec![(x, 2.0)], 4.0, 8.0);
        assert_eq!(m.check_feasible(&[3.0], 1e-9), None);
        assert!(m
            .check_feasible(&[1.0], 1e-9)
            .unwrap()
            .contains("constraint"));
        assert!(m.check_feasible(&[-1.0], 1e-9).unwrap().contains("outside"));
        assert!(m
            .check_feasible(&[2.5], 1e-9)
            .unwrap()
            .contains("not integral"));
        assert!(m.check_feasible(&[], 1e-9).is_some());
    }

    #[test]
    fn tighten_bounds_detects_empty() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 0.0);
        assert!(m.tighten_bounds(x, 2.0, 8.0));
        assert_eq!(m.var(x).lb, 2.0);
        assert_eq!(m.var(x).ub, 8.0);
        assert!(!m.tighten_bounds(x, 9.0, 12.0));
    }

    #[test]
    fn equality_is_a_degenerate_range() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 0.0);
        m.add_eq(vec![(x, 1.0)], 3.0);
        let c = &m.constraints()[0];
        assert_eq!(c.lo, 3.0);
        assert_eq!(c.hi, 3.0);
    }

    #[test]
    fn memory_estimate_grows_with_model() {
        let mut m = Model::new();
        let base = m.memory_estimate();
        let x = m.add_var(0.0, 1.0, 0.0);
        m.add_le(vec![(x, 1.0)], 1.0);
        assert!(m.memory_estimate() > base);
    }
}
