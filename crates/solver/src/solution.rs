//! Solve outcomes, solutions, and statistics.

use std::fmt;
use std::time::Duration;

/// A (possibly optimal) assignment found by the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// One value per model variable, in [`crate::VarId`] order.
    pub values: Vec<f64>,
    /// Objective value under the model's own sense.
    pub objective: f64,
}

impl Solution {
    /// The value of variable `i`, rounded to the nearest integer (for
    /// reading integer variables out of a MILP solution).
    pub fn int_value(&self, i: usize) -> i64 {
        self.values[i].round() as i64
    }
}

/// Terminal state of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// Proved optimal (within the configured relative gap).
    Optimal(Solution),
    /// A feasible solution was found but a resource budget expired
    /// before optimality was proved.
    Feasible {
        /// The incumbent at interruption.
        best: Solution,
        /// Remaining relative gap between incumbent and best bound.
        gap: f64,
        /// Which budget expired.
        limit: LimitKind,
    },
    /// The model has no feasible assignment.
    Infeasible,
    /// The LP relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A resource budget expired before *any* feasible solution was
    /// found — the CPLEX "choke" emulation (§3.2 of the paper).
    ResourceExhausted(LimitKind),
}

/// Which resource budget expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// Wall-clock limit.
    Time,
    /// Branch-and-bound node limit.
    Nodes,
    /// Total simplex iteration limit.
    Iterations,
    /// Memory-estimate limit.
    Memory,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LimitKind::Time => "time limit",
            LimitKind::Nodes => "node limit",
            LimitKind::Iterations => "iteration limit",
            LimitKind::Memory => "memory limit",
        };
        write!(f, "{s}")
    }
}

impl SolveOutcome {
    /// The best solution carried by this outcome, if any.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SolveOutcome::Optimal(s) => Some(s),
            SolveOutcome::Feasible { best, .. } => Some(best),
            _ => None,
        }
    }

    /// `true` for `Optimal`.
    pub fn is_optimal(&self) -> bool {
        matches!(self, SolveOutcome::Optimal(_))
    }

    /// `true` when the solve *failed to produce an answer* (infeasible
    /// models are answers; resource exhaustion is not).
    pub fn is_failure(&self) -> bool {
        matches!(self, SolveOutcome::ResourceExhausted(_))
    }
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Total simplex iterations across all LP solves.
    pub simplex_iterations: u64,
    /// LP relaxations solved.
    pub lp_solves: u64,
    /// Wall-clock duration of the solve.
    pub wall_time: Duration,
    /// Peak estimated memory in bytes (model + open nodes).
    pub peak_memory_estimate: usize,
    /// Union of row indices violated at *any* infeasible node
    /// relaxation, as reported by the simplex phase-1 diagnostic
    /// (IIS-lite; see [`crate::simplex::LpResult::violated_rows`]).
    /// Names the conflicting constraints when the model is infeasible
    /// or when whole subtrees keep dying on the same rows.
    pub root_infeasible_rows: Vec<u32>,
}

/// Outcome plus statistics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Terminal state.
    pub outcome: SolveOutcome,
    /// Work counters.
    pub stats: SolveStats,
}

impl SolveResult {
    /// Shorthand for `outcome.solution()`.
    pub fn solution(&self) -> Option<&Solution> {
        self.outcome.solution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_solution_access() {
        let s = Solution {
            values: vec![1.0, 2.49999999],
            objective: 3.0,
        };
        assert_eq!(s.int_value(1), 2);
        let opt = SolveOutcome::Optimal(s.clone());
        assert!(opt.is_optimal());
        assert_eq!(opt.solution().unwrap().objective, 3.0);
        assert!(!opt.is_failure());

        let fail = SolveOutcome::ResourceExhausted(LimitKind::Memory);
        assert!(fail.is_failure());
        assert!(fail.solution().is_none());

        let feas = SolveOutcome::Feasible {
            best: s,
            gap: 0.1,
            limit: LimitKind::Time,
        };
        assert!(feas.solution().is_some());
        assert!(!feas.is_optimal());
    }

    #[test]
    fn limit_kind_displays() {
        assert_eq!(LimitKind::Memory.to_string(), "memory limit");
        assert_eq!(LimitKind::Time.to_string(), "time limit");
    }
}
