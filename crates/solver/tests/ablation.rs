//! Ablation-flag and diagnostic tests: the solver must produce the
//! *same answers* with the performance devices (presolve singleton
//! folding, simplex flip batching) disabled — only the work profile may
//! change — and infeasible models must carry the violated-row
//! diagnostic.

use paq_solver::{MilpSolver, Model, Sense, SolveOutcome, SolverConfig, VarId};

/// A package-query-shaped model: many 0/1 variables, one budget row,
/// one cardinality row, plus a block of singleton "cap" rows like the
/// SKETCH query's per-group cardinality constraints.
fn sketchy_model(n: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n)
        .map(|i| m.add_int_var(0.0, 5.0, ((i * 29) % 17) as f64 + 1.0))
        .collect();
    m.add_le(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 31) % 11) as f64 + 1.0))
            .collect(),
        (n as f64) * 1.5,
    );
    m.add_range(vars.iter().map(|&v| (v, 1.0)).collect(), 3.0, 12.0);
    // Singleton cap rows (what presolve folds into bounds).
    for (i, &v) in vars.iter().enumerate() {
        m.add_le(vec![(v, 1.0)], ((i % 3) + 1) as f64);
    }
    m.set_sense(Sense::Maximize);
    m
}

fn objective(outcome: &SolveOutcome) -> f64 {
    outcome.solution().expect("expected a solution").objective
}

#[test]
fn folding_ablation_preserves_optimum() {
    let model = sketchy_model(200);
    let with = MilpSolver::new(SolverConfig::default()).solve(&model);
    let without =
        MilpSolver::new(SolverConfig::default().with_fold_singletons(false)).solve(&model);
    assert_eq!(objective(&with.outcome), objective(&without.outcome));
    // Sanity that the ablation actually changed the work profile: the
    // unfolded run keeps ~200 extra rows in the basis.
    assert!(without.stats.simplex_iterations >= with.stats.simplex_iterations);
}

#[test]
fn flip_batching_ablation_preserves_optimum() {
    let model = sketchy_model(300);
    let with = MilpSolver::new(SolverConfig::default()).solve(&model);
    let without = MilpSolver::new(SolverConfig::default().with_flip_batching(false)).solve(&model);
    assert_eq!(objective(&with.outcome), objective(&without.outcome));
}

#[test]
fn both_ablations_together_still_correct() {
    let model = sketchy_model(120);
    let baseline = MilpSolver::new(SolverConfig::default()).solve(&model);
    let stripped = MilpSolver::new(
        SolverConfig::default()
            .with_fold_singletons(false)
            .with_flip_batching(false),
    )
    .solve(&model);
    assert_eq!(objective(&baseline.outcome), objective(&stripped.outcome));
}

#[test]
fn infeasible_root_reports_violated_rows() {
    // Two contradictory multi-variable rows; with folding disabled they
    // must surface in the root diagnostic.
    let mut m = Model::new();
    let x = m.add_var(0.0, 10.0, 1.0);
    let y = m.add_var(0.0, 10.0, 1.0);
    m.add_ge(vec![(x, 1.0), (y, 1.0)], 15.0); // needs x+y ≥ 15
    m.add_le(vec![(x, 1.0), (y, 1.0)], 5.0); // but x+y ≤ 5
    m.set_sense(Sense::Maximize);
    let result = MilpSolver::new(SolverConfig::default()).solve(&m);
    assert_eq!(result.outcome, SolveOutcome::Infeasible);
    assert!(
        !result.stats.root_infeasible_rows.is_empty(),
        "phase-1 diagnostic must name at least one violated row"
    );
    for &row in &result.stats.root_infeasible_rows {
        assert!(row < 2, "row index {row} out of range");
    }
}

#[test]
fn feasible_solves_report_no_violations() {
    let mut m = Model::new();
    let x = m.add_int_var(0.0, 4.0, 1.0);
    let y = m.add_int_var(0.0, 4.0, 1.0);
    m.add_le(vec![(x, 1.0), (y, 1.0)], 6.0);
    m.set_sense(Sense::Maximize);
    let result = MilpSolver::new(SolverConfig::default()).solve(&m);
    assert!(result.outcome.is_optimal());
    assert!(result.stats.root_infeasible_rows.is_empty());
}
