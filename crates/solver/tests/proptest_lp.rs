//! Property-based tests for the solver: random LPs and MILPs checked
//! against first principles (feasibility of reported solutions, weak
//! duality via the relaxation, agreement with exhaustive search).

use paq_solver::{MilpSolver, Model, Sense, SolveOutcome, SolverConfig, VarId};
use proptest::prelude::*;

/// Build a random bounded model from generated data.
fn build_model(
    objs: &[f64],
    rows: &[(Vec<f64>, f64, f64)],
    ub: f64,
    integer: bool,
    maximize: bool,
) -> Model {
    let mut m = Model::new();
    let vars: Vec<VarId> = objs
        .iter()
        .map(|&c| {
            if integer {
                m.add_int_var(0.0, ub, c)
            } else {
                m.add_var(0.0, ub, c)
            }
        })
        .collect();
    for (coefs, lo, hi) in rows {
        let (lo, hi) = if lo <= hi { (*lo, *hi) } else { (*hi, *lo) };
        m.add_range(
            vars.iter().copied().zip(coefs.iter().copied()).collect(),
            lo,
            hi,
        );
    }
    m.set_sense(if maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any reported LP/MILP solution must actually satisfy the model,
    /// and the MILP optimum can never beat the LP relaxation.
    #[test]
    fn solutions_are_feasible_and_bounded_by_relaxation(
        objs in prop::collection::vec(-10.0f64..10.0, 2..7),
        raw_rows in prop::collection::vec(
            (prop::collection::vec(-5.0f64..5.0, 7), -20.0f64..20.0, -20.0f64..20.0),
            1..4,
        ),
        ub in 1.0f64..6.0,
        maximize in any::<bool>(),
    ) {
        let n = objs.len();
        let rows: Vec<(Vec<f64>, f64, f64)> = raw_rows
            .into_iter()
            .map(|(c, lo, hi)| (c[..n].to_vec(), lo, hi))
            .collect();
        let solver = MilpSolver::new(SolverConfig::default());

        let milp = build_model(&objs, &rows, ub.floor(), true, maximize);
        let lp = build_model(&objs, &rows, ub.floor(), false, maximize);
        let milp_out = solver.solve(&milp).outcome;
        let lp_out = solver.solve(&lp).outcome;

        if let SolveOutcome::Optimal(sol) = &milp_out {
            prop_assert!(milp.check_feasible(&sol.values, 1e-6).is_none(),
                "infeasible 'optimal' solution: {:?}", sol.values);
            // Weak duality against the relaxation.
            if let SolveOutcome::Optimal(rel) = &lp_out {
                if maximize {
                    prop_assert!(sol.objective <= rel.objective + 1e-6);
                } else {
                    prop_assert!(sol.objective >= rel.objective - 1e-6);
                }
            }
        }
        // An infeasible MILP with a feasible LP is possible; the
        // reverse is not (integer points are LP points).
        if matches!(lp_out, SolveOutcome::Infeasible) {
            prop_assert!(
                matches!(milp_out, SolveOutcome::Infeasible),
                "LP infeasible but MILP {milp_out:?}"
            );
        }
    }

    /// On tiny domains the MILP optimum matches exhaustive enumeration.
    #[test]
    fn milp_matches_exhaustive_enumeration(
        objs in prop::collection::vec(-6.0f64..6.0, 2..5),
        raw_rows in prop::collection::vec(
            (prop::collection::vec(-4.0f64..4.0, 5), -12.0f64..12.0, 0.0f64..14.0),
            1..3,
        ),
        maximize in any::<bool>(),
    ) {
        let n = objs.len();
        let rows: Vec<(Vec<f64>, f64, f64)> = raw_rows
            .into_iter()
            .map(|(c, lo, hi)| (c[..n].to_vec(), lo, lo.max(hi)))
            .collect();
        let model = build_model(&objs, &rows, 2.0, true, maximize);

        // Exhaustive search over {0,1,2}^n.
        let mut best: Option<f64> = None;
        let mut assignment = vec![0.0; n];
        let total = 3usize.pow(n as u32);
        for code in 0..total {
            let mut c = code;
            for slot in assignment.iter_mut() {
                *slot = (c % 3) as f64;
                c /= 3;
            }
            if model.check_feasible(&assignment, 1e-9).is_none() {
                let obj = model.objective_value(&assignment);
                let better = match best {
                    None => true,
                    Some(b) => if maximize { obj > b } else { obj < b },
                };
                if better {
                    best = Some(obj);
                }
            }
        }

        let out = MilpSolver::new(SolverConfig::default()).solve(&model).outcome;
        match (best, out) {
            (None, SolveOutcome::Infeasible) => {}
            (Some(b), SolveOutcome::Optimal(sol)) => {
                prop_assert!((b - sol.objective).abs() < 1e-6,
                    "exhaustive {b} vs solver {}", sol.objective);
            }
            (b, o) => prop_assert!(false, "mismatch: exhaustive {b:?} vs solver {o:?}"),
        }
    }

    /// Ablation switches never change the reported optimum.
    #[test]
    fn ablations_preserve_answers(
        objs in prop::collection::vec(0.0f64..8.0, 2..6),
        weights in prop::collection::vec(1.0f64..5.0, 6),
        budget in 2.0f64..15.0,
    ) {
        let n = objs.len();
        let mut configs = vec![SolverConfig::default()];
        configs.push(SolverConfig::default().with_fold_singletons(false));
        configs.push(SolverConfig::default().with_flip_batching(false));

        let mut objective = None;
        for cfg in configs {
            let mut m = Model::new();
            let vars: Vec<VarId> =
                objs.iter().map(|&c| m.add_int_var(0.0, 1.0, c)).collect();
            m.add_le(
                vars.iter().copied().zip(weights[..n].iter().copied()).collect(),
                budget,
            );
            for &v in &vars {
                m.add_le(vec![(v, 1.0)], 1.0); // singleton rows to fold
            }
            m.set_sense(Sense::Maximize);
            let out = MilpSolver::new(cfg).solve(&m).outcome;
            let obj = out.solution().expect("always feasible: empty set").objective;
            match objective {
                None => objective = Some(obj),
                Some(prev) => prop_assert!((prev - obj).abs() < 1e-9),
            }
        }
    }
}
