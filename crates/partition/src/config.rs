//! Partitioning configuration: attributes, τ, ω, and the ε → ω mapping.

use paq_relational::{RelError, RelResult, Table};

/// Configuration for the offline partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// The numeric partitioning attributes `A` (§4.1). For workload
    /// partitioning this is the union of all query attributes.
    pub attributes: Vec<String>,
    /// Size threshold τ (Definition 1): every group holds at most τ
    /// original tuples.
    pub size_threshold: usize,
    /// Radius limit ω (Definition 2): every group's radius is at most
    /// ω. `None` disables the radius condition, matching the paper's
    /// main experimental setup.
    pub radius_limit: Option<f64>,
    /// Recursion depth cap (a safety valve; the paper's method always
    /// terminates because splits strictly shrink groups, but degenerate
    /// duplicate-heavy data is chunked instead once this depth is hit).
    pub max_depth: u32,
}

impl PartitionConfig {
    /// Partition on `attributes` with size threshold `tau` and no radius
    /// condition — the configuration used for Figures 4–8.
    pub fn by_size(attributes: Vec<String>, tau: usize) -> Self {
        PartitionConfig {
            attributes,
            size_threshold: tau.max(1),
            radius_limit: None,
            max_depth: 64,
        }
    }

    /// Add a radius limit ω.
    pub fn with_radius_limit(mut self, omega: f64) -> Self {
        assert!(omega >= 0.0, "radius limit must be nonnegative");
        self.radius_limit = Some(omega);
        self
    }

    /// The Theorem 3 radius limit (Eq. 1) for approximation parameter
    /// `ε`:
    ///
    /// ```text
    /// ω = min_{j, attr} γ·|t̃_j.attr|,   γ = ε        (maximization)
    ///                                    γ = ε/(1+ε)  (minimization)
    /// ```
    ///
    /// The representatives `t̃_j` depend on the partitioning itself, so
    /// this helper computes the *conservative* instantiation
    /// `γ · min_{i, attr} |t_i.attr|` over the raw tuples — every
    /// centroid of nonnegative data dominates that minimum, hence the
    /// bound still guarantees `(1±ε)⁶`. Returns an error if any
    /// partitioning attribute is missing or non-numeric.
    pub fn omega_for_epsilon(
        table: &Table,
        attributes: &[String],
        epsilon: f64,
        maximization: bool,
    ) -> RelResult<f64> {
        assert!(epsilon >= 0.0, "epsilon must be nonnegative");
        let gamma = if maximization {
            epsilon
        } else {
            epsilon / (1.0 + epsilon)
        };
        let mut min_abs = f64::INFINITY;
        for attr in attributes {
            let col = table.column(attr)?;
            if !col.data_type().is_numeric() {
                return Err(RelError::TypeMismatch {
                    expected: "numeric partitioning attribute".into(),
                    found: format!("{attr} ({})", col.data_type()),
                });
            }
            for i in 0..col.len() {
                if let Some(v) = col.f64_at(i) {
                    min_abs = min_abs.min(v.abs());
                }
            }
        }
        if min_abs.is_infinite() {
            min_abs = 0.0;
        }
        Ok(gamma * min_abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::{DataType, Schema, Value};

    fn table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
            ("s", DataType::Str),
        ]));
        for (x, y) in [(2.0, 8.0), (4.0, 6.0), (3.0, 10.0)] {
            t.push_row(vec![Value::Float(x), Value::Float(y), "t".into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn by_size_defaults() {
        let c = PartitionConfig::by_size(vec!["x".into()], 100);
        assert_eq!(c.size_threshold, 100);
        assert_eq!(c.radius_limit, None);
        let zero = PartitionConfig::by_size(vec!["x".into()], 0);
        assert_eq!(zero.size_threshold, 1, "τ is clamped to ≥ 1");
    }

    #[test]
    fn omega_uses_gamma_epsilon_for_maximization() {
        let t = table();
        // min |value| over x,y is 2.0; γ = ε = 0.5 ⇒ ω = 1.0.
        let omega =
            PartitionConfig::omega_for_epsilon(&t, &["x".into(), "y".into()], 0.5, true).unwrap();
        assert_eq!(omega, 1.0);
    }

    #[test]
    fn omega_uses_gamma_over_one_plus_eps_for_minimization() {
        let t = table();
        // γ = ε/(1+ε) = 0.5/1.5 = 1/3 ⇒ ω = 2/3.
        let omega =
            PartitionConfig::omega_for_epsilon(&t, &["x".into(), "y".into()], 0.5, false).unwrap();
        assert!((omega - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_zero_means_zero_radius() {
        let t = table();
        let omega = PartitionConfig::omega_for_epsilon(&t, &["x".into()], 0.0, true).unwrap();
        assert_eq!(omega, 0.0);
    }

    #[test]
    fn non_numeric_attribute_rejected() {
        let t = table();
        assert!(PartitionConfig::omega_for_epsilon(&t, &["s".into()], 0.1, true).is_err());
        assert!(PartitionConfig::omega_for_epsilon(&t, &["zzz".into()], 0.1, true).is_err());
    }
}
