//! k-means baseline partitioner.
//!
//! §4.1 ("Alternative partitioning approaches") explains why
//! off-the-shelf clustering is a poor fit for SKETCHREFINE: algorithms
//! like k-means take the number of clusters as input and offer no way
//! to bound group **size** (τ) or **radius** (ω). This module implements
//! plain Lloyd's iterations so the benchmark suite can quantify that
//! comparison (group-size spread, radius spread, build time) against the
//! quad-tree method.

use std::time::Instant;

use paq_exec::ThreadPool;
use paq_relational::{Column, RelError, RelResult, Table};

use crate::partitioning::{centroid_and_radius, Group, Partitioning};

/// Below this row count the assignment step runs inline even when a
/// pool is available; the distance scans are too cheap to ship.
const PARALLEL_ASSIGN_MIN_ROWS: usize = 2048;

/// Configuration for the k-means baseline.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Partitioning attributes.
    pub attributes: Vec<String>,
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: u32,
    /// Seed for the deterministic centroid initialization.
    pub seed: u64,
}

/// Run Lloyd's algorithm and package the result as a [`Partitioning`].
///
/// Note the contrast with the quad-tree partitioner: the result carries
/// **no τ/ω guarantee** — groups can be arbitrarily large or wide.
pub fn kmeans_partition(table: &Table, config: &KMeansConfig) -> RelResult<Partitioning> {
    kmeans_partition_impl(table, config, None)
}

/// [`kmeans_partition`] with the assignment step (the `O(n·k·d)` hot
/// loop) parallelized on `pool`. Per-row nearest-centroid decisions are
/// independent and the centroid update stays sequential, so the
/// clustering is identical to the single-threaded run.
pub fn kmeans_partition_with_pool(
    table: &Table,
    config: &KMeansConfig,
    pool: &ThreadPool,
) -> RelResult<Partitioning> {
    kmeans_partition_impl(table, config, Some(pool))
}

fn kmeans_partition_impl(
    table: &Table,
    config: &KMeansConfig,
    pool: Option<&ThreadPool>,
) -> RelResult<Partitioning> {
    assert!(config.k >= 1, "k must be at least 1");
    let start = Instant::now();
    let columns: Vec<&Column> = config
        .attributes
        .iter()
        .map(|a| {
            let col = table.column(a)?;
            if !col.data_type().is_numeric() {
                return Err(RelError::TypeMismatch {
                    expected: "numeric attribute".into(),
                    found: format!("{a} ({})", col.data_type()),
                });
            }
            Ok(col)
        })
        .collect::<RelResult<_>>()?;
    let n = table.num_rows();
    let d = columns.len();
    let k = config.k.min(n.max(1));

    // Materialize coordinates (NULL → 0, consistent with the quad-tree's
    // low-side placement).
    let mut coords = vec![0.0f64; n * d];
    for (a, col) in columns.iter().enumerate() {
        for i in 0..n {
            coords[i * d + a] = col.f64_at(i).unwrap_or(0.0);
        }
    }

    // Deterministic init: pick k distinct rows via xorshift.
    let mut centroids = vec![0.0f64; k * d];
    let mut state = config.seed | 1;
    let mut chosen = Vec::with_capacity(k);
    while chosen.len() < k && n > 0 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let cand = (state % n as u64) as usize;
        if !chosen.contains(&cand) {
            chosen.push(cand);
        }
        if chosen.len() == n {
            break;
        }
    }
    for (c, &row) in chosen.iter().enumerate() {
        centroids[c * d..(c + 1) * d].copy_from_slice(&coords[row * d..(row + 1) * d]);
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..config.max_iterations {
        // Assign.
        let changed = match pool {
            Some(pool) if n >= PARALLEL_ASSIGN_MIN_ROWS && pool.threads() > 1 => {
                let chunk_len = n.div_ceil(pool.threads()).max(1);
                let mut flags = vec![false; n.div_ceil(chunk_len)];
                let coords = &coords;
                let centroids = &centroids;
                pool.scope(|scope| {
                    for (ci, (chunk, flag)) in assignment
                        .chunks_mut(chunk_len)
                        .zip(flags.iter_mut())
                        .enumerate()
                    {
                        scope.spawn(move || {
                            *flag = assign_chunk(coords, centroids, d, k, ci * chunk_len, chunk);
                        });
                    }
                });
                flags.into_iter().any(|f| f)
            }
            _ => assign_chunk(&coords, &centroids, d, k, 0, &mut assignment),
        };
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i];
            counts[c] += 1;
            for a in 0..d {
                sums[c * d + a] += coords[i * d + a];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for a in 0..d {
                    centroids[c * d + a] = sums[c * d + a] / counts[c] as f64;
                }
            }
        }
    }

    // Package non-empty clusters.
    let mut groups: Vec<Group> = Vec::new();
    for c in 0..k {
        let rows: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
        if rows.is_empty() {
            continue;
        }
        let (representative, radius) = centroid_and_radius(&columns, &rows);
        groups.push(Group {
            gid: groups.len() as i64 + 1,
            rows,
            representative,
            radius,
        });
    }
    if groups.is_empty() {
        groups.push(Group {
            gid: 1,
            rows: vec![],
            representative: vec![0.0; d],
            radius: 0.0,
        });
    }

    Ok(Partitioning {
        attributes: config.attributes.clone(),
        groups,
        build_time: start.elapsed(),
    })
}

/// Nearest-centroid assignment for rows `[base, base + chunk.len())`,
/// written into `chunk`; returns whether any assignment changed.
fn assign_chunk(
    coords: &[f64],
    centroids: &[f64],
    d: usize,
    k: usize,
    base: usize,
    chunk: &mut [usize],
) -> bool {
    let mut changed = false;
    for (off, slot) in chunk.iter_mut().enumerate() {
        let i = base + off;
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let mut dist = 0.0;
            for a in 0..d {
                let diff = coords[i * d + a] - centroids[c * d + a];
                dist += diff * diff;
            }
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        if *slot != best {
            *slot = best;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::{DataType, Schema, Value};

    fn two_blob_table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
        ]));
        for i in 0..20 {
            let off = (i % 5) as f64 * 0.1;
            t.push_row(vec![Value::Float(off), Value::Float(off)])
                .unwrap();
            t.push_row(vec![Value::Float(100.0 + off), Value::Float(100.0 + off)])
                .unwrap();
        }
        t
    }

    fn config(k: usize) -> KMeansConfig {
        KMeansConfig {
            attributes: vec!["x".into(), "y".into()],
            k,
            max_iterations: 50,
            seed: 42,
        }
    }

    #[test]
    fn separates_two_blobs() {
        let t = two_blob_table();
        let p = kmeans_partition(&t, &config(2)).unwrap();
        assert_eq!(p.num_groups(), 2);
        assert!(p.is_disjoint_cover(40));
        let mut sizes: Vec<usize> = p.groups.iter().map(Group::size).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![20, 20]);
        // Each blob's radius is small; a τ/ω-blind k=1 run would not be.
        assert!(p.max_radius() < 1.0);
    }

    #[test]
    fn k_one_degenerates_to_single_wide_group() {
        let t = two_blob_table();
        let p = kmeans_partition(&t, &config(1)).unwrap();
        assert_eq!(p.num_groups(), 1);
        // This is the paper's point: no radius control.
        assert!(p.max_radius() > 40.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = two_blob_table();
        let a = kmeans_partition(&t, &config(3)).unwrap();
        let b = kmeans_partition(&t, &config(3)).unwrap();
        assert_eq!(a.num_groups(), b.num_groups());
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.rows, gb.rows);
        }
    }

    #[test]
    fn pooled_clustering_is_identical_to_sequential() {
        // Above PARALLEL_ASSIGN_MIN_ROWS so the pool path actually runs.
        let mut t = Table::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
        ]));
        let mut state = 0xC0FFEEu64;
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = (state % 1000) as f64;
            let y = ((state >> 10) % 1000) as f64;
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        let cfg = config(8);
        let seq = kmeans_partition(&t, &cfg).unwrap();
        let pool = ThreadPool::new(4);
        let par = kmeans_partition_with_pool(&t, &cfg, &pool).unwrap();
        assert_eq!(seq.num_groups(), par.num_groups());
        for (ga, gb) in seq.groups.iter().zip(&par.groups) {
            assert_eq!(ga.rows, gb.rows);
            assert_eq!(ga.representative, gb.representative);
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Float(2.0)]).unwrap();
        let p = kmeans_partition(
            &t,
            &KMeansConfig {
                attributes: vec!["x".into()],
                k: 10,
                max_iterations: 5,
                seed: 7,
            },
        )
        .unwrap();
        assert!(p.num_groups() <= 2);
        assert!(p.is_disjoint_cover(2));
    }

    #[test]
    fn empty_table_yields_one_empty_group() {
        let t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        let p = kmeans_partition(
            &t,
            &KMeansConfig {
                attributes: vec!["x".into()],
                k: 3,
                max_iterations: 5,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.num_rows(), 0);
    }
}
