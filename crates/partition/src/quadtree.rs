//! k-dimensional quad-tree partitioner (§4.1, "Partitioning method").
//!
//! The paper's procedure, restated over this crate's substrate:
//!
//! 1. start with a single group holding every tuple;
//! 2. compute each group's size, centroid and radius (the group-by
//!    query of §4.1, here `partitioning::centroid_and_radius`);
//! 3. any group violating the size threshold τ or the radius limit ω is
//!    split into up to `2^k` sub-quadrants around its centroid pivot;
//! 4. recurse until every group satisfies both conditions.
//!
//! The full hierarchy is retained in a [`QuadTree`], enabling the
//! *dynamic partitioning* variant discussed in §4.1: extracting, at
//! query time, the coarsest partitioning satisfying a required radius.

use std::collections::HashMap;
use std::time::Instant;

use paq_exec::ThreadPool;
use paq_relational::{Column, RelError, RelResult, Table};

use crate::config::PartitionConfig;
use crate::partitioning::{centroid_and_radius, Group, Partitioning};

/// Nodes smaller than this compute their children's statistics inline
/// even when a pool is available: below it, task hand-off costs more
/// than the group-by itself.
const PARALLEL_STATS_MIN_ROWS: usize = 1024;

/// A node of the retained quad-tree hierarchy.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Rows covered by this node.
    pub rows: Vec<usize>,
    /// Centroid over the partitioning attributes.
    pub centroid: Vec<f64>,
    /// Radius (Definition 2) of the node's row set.
    pub radius: f64,
    /// Child node indices (empty = leaf).
    pub children: Vec<u32>,
    /// Depth in the tree (root = 0).
    pub depth: u32,
}

/// The retained partitioning hierarchy.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// Partitioning attributes.
    pub attributes: Vec<String>,
    /// Nodes; index 0 is the root.
    pub nodes: Vec<TreeNode>,
    /// Build wall-clock time.
    pub build_time: std::time::Duration,
}

/// The offline partitioner.
#[derive(Debug, Clone)]
pub struct Partitioner {
    config: PartitionConfig,
}

impl Partitioner {
    /// A partitioner with the given configuration.
    pub fn new(config: PartitionConfig) -> Self {
        assert!(
            !config.attributes.is_empty(),
            "partitioning requires at least one attribute"
        );
        Partitioner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Build the full hierarchy for `table`.
    pub fn build_tree(&self, table: &Table) -> RelResult<QuadTree> {
        self.build_tree_impl(table, None, None)
    }

    /// Build the full hierarchy with per-node child statistics computed
    /// on `pool` (the offline build is embarrassingly parallel across
    /// sibling leaves). Node layout, centroids, and radii are identical
    /// to [`Partitioner::build_tree`] — work is only parallelized
    /// *within* each node's deterministic split, never reordered.
    pub fn build_tree_with_pool(&self, table: &Table, pool: &ThreadPool) -> RelResult<QuadTree> {
        self.build_tree_impl(table, Some(pool), None)
    }

    fn build_tree_impl(
        &self,
        table: &Table,
        pool: Option<&ThreadPool>,
        prefix_rows: Option<usize>,
    ) -> RelResult<QuadTree> {
        let start = Instant::now();
        // Delta-aware maintenance builds the "main" copy over a prefix
        // of an appended table; everything downstream (root row set,
        // normalization scales) sees only those rows, so the build is a
        // pure function of the prefix — appending rows later cannot
        // perturb it.
        let bound = prefix_rows
            .unwrap_or(table.num_rows())
            .min(table.num_rows());
        let columns: Vec<&Column> = self
            .config
            .attributes
            .iter()
            .map(|a| {
                let col = table.column(a)?;
                if !col.data_type().is_numeric() {
                    return Err(RelError::TypeMismatch {
                        expected: "numeric partitioning attribute".into(),
                        found: format!("{a} ({})", col.data_type()),
                    });
                }
                Ok(col)
            })
            .collect::<RelResult<_>>()?;

        let mut nodes: Vec<TreeNode> = Vec::new();
        let all_rows: Vec<usize> = (0..bound).collect();
        let (centroid, radius) = centroid_and_radius(&columns, &all_rows);
        // Per-attribute ranges over the built rows: the normalization
        // scales for split-dimension selection.
        let scales: Vec<f64> = columns
            .iter()
            .map(|col| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for r in 0..bound.min(col.len()) {
                    if let Some(v) = col.f64_at(r) {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if hi >= lo {
                    hi - lo
                } else {
                    0.0
                }
            })
            .collect();
        nodes.push(TreeNode {
            rows: all_rows,
            centroid,
            radius,
            children: vec![],
            depth: 0,
        });

        // Iterative worklist over node indices needing a split check.
        let mut work = vec![0usize];
        while let Some(idx) = work.pop() {
            let (rows, radius, depth) = {
                let n = &nodes[idx];
                (n.rows.clone(), n.radius, n.depth)
            };
            let size_ok = rows.len() <= self.config.size_threshold;
            let radius_ok = self.config.radius_limit.is_none_or(|omega| radius <= omega);
            if (size_ok && radius_ok) || rows.len() <= 1 {
                continue; // satisfied leaf
            }

            let sub_groups = if depth >= self.config.max_depth || radius <= 0.0 {
                // Degenerate group (duplicates / depth cap): chunk into
                // τ-sized pieces to honor the size threshold. The radius
                // of each chunk equals the parent's (0 for duplicates).
                chunk_rows(&rows, self.config.size_threshold)
            } else {
                let split_dims = split_attributes(
                    &columns,
                    &rows,
                    &scales,
                    self.config.size_threshold,
                    self.config.radius_limit,
                );
                let quads = quadrant_split(&columns, &nodes[idx].centroid, &rows, &split_dims);
                if quads.len() <= 1 {
                    chunk_rows(&rows, self.config.size_threshold)
                } else {
                    quads
                }
            };

            // Child statistics: one group-by per sub-quadrant. With a
            // pool and a big enough node, compute them in parallel;
            // `ThreadPool::map` keeps input order, so the resulting
            // node layout is byte-identical to the sequential build.
            let stats: Vec<(Vec<f64>, f64)> = match pool {
                Some(pool) if sub_groups.len() > 1 && rows.len() >= PARALLEL_STATS_MIN_ROWS => {
                    let columns = &columns;
                    pool.map(
                        sub_groups.iter().map(Vec::as_slice).collect(),
                        |sub: &[usize]| centroid_and_radius(columns, sub),
                    )
                }
                _ => sub_groups
                    .iter()
                    .map(|sub| centroid_and_radius(&columns, sub))
                    .collect(),
            };

            let mut child_ids = Vec::with_capacity(sub_groups.len());
            for (sub, (centroid, radius)) in sub_groups.into_iter().zip(stats) {
                let child = TreeNode {
                    rows: sub,
                    centroid,
                    radius,
                    children: vec![],
                    depth: depth + 1,
                };
                let id = nodes.len();
                nodes.push(child);
                child_ids.push(id as u32);
                work.push(id);
            }
            nodes[idx].children = child_ids;
        }

        Ok(QuadTree {
            attributes: self.config.attributes.clone(),
            nodes,
            build_time: start.elapsed(),
        })
    }

    /// Build the flat partitioning (the tree's leaves). This is the
    /// paper's *static* partitioning artifact.
    pub fn partition(&self, table: &Table) -> RelResult<Partitioning> {
        let tree = self.build_tree(table)?;
        Ok(tree.leaves())
    }

    /// [`Partitioner::partition`] with the build parallelized on
    /// `pool`; the produced partitioning is identical.
    pub fn partition_with_pool(&self, table: &Table, pool: &ThreadPool) -> RelResult<Partitioning> {
        let tree = self.build_tree_with_pool(table, pool)?;
        Ok(tree.leaves())
    }

    /// Partition only the first `prefix_rows` rows of `table`.
    ///
    /// This is the delta-aware maintenance primitive: the "main" copy
    /// of an appended table is the prefix that existed when the
    /// partitioning was (re)built, and rows past it are absorbed one at
    /// a time via [`Partitioning::patch_append`]. Because the root row
    /// set *and* the normalization scales are computed over the prefix
    /// alone, `partition_prefix(t, k)` is bit-identical for every table
    /// whose first `k` rows agree — appends never perturb the base
    /// build, which is what makes `prefix build + ordered patches` a
    /// canonical artifact reproducible from a WAL replay.
    pub fn partition_prefix(&self, table: &Table, prefix_rows: usize) -> RelResult<Partitioning> {
        let tree = self.build_tree_impl(table, None, Some(prefix_rows))?;
        Ok(tree.leaves())
    }

    /// [`Partitioner::partition_prefix`] with the build parallelized on
    /// `pool`; the produced partitioning is identical.
    pub fn partition_prefix_with_pool(
        &self,
        table: &Table,
        prefix_rows: usize,
        pool: &ThreadPool,
    ) -> RelResult<Partitioning> {
        let tree = self.build_tree_impl(table, Some(pool), Some(prefix_rows))?;
        Ok(tree.leaves())
    }
}

/// Choose the attributes a split should pivot on.
///
/// A naive `2^k` quadrant split over many partitioning attributes
/// explodes the group count far past the paper's intended `m ≈ n/τ`
/// (13 workload attributes would give 8192-way splits). Instead we
/// split only on the attributes that *matter*: enough of the
/// **relatively** widest dimensions — spread normalized by each
/// attribute's full-table range in `scales`, so a [0, 400 000] price
/// column cannot starve a [1, 1000] cost column of splits — to reach
/// the size threshold in one level (`2^s ≥ |G|/τ`), plus every
/// dimension whose absolute spread alone violates the radius limit.
/// The recursion still guarantees both conditions.
fn split_attributes(
    columns: &[&Column],
    rows: &[usize],
    scales: &[f64],
    tau: usize,
    omega: Option<f64>,
) -> Vec<usize> {
    let mut spreads: Vec<(usize, f64, f64)> = columns
        .iter()
        .enumerate()
        .map(|(a, col)| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &r in rows {
                if let Some(v) = col.f64_at(r) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let spread = if hi >= lo { hi - lo } else { 0.0 };
            let relative = if scales[a] > 0.0 {
                spread / scales[a]
            } else {
                0.0
            };
            (a, relative, spread)
        })
        .collect();
    // Relatively widest dimensions first; index tie-break keeps
    // determinism.
    spreads.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let from_size = if rows.len() > tau && tau > 0 {
        (rows.len() as f64 / tau as f64).log2().ceil().max(1.0) as usize
    } else {
        0
    };
    let from_radius = match omega {
        // A dimension with spread ≤ ω can never be the radius culprit
        // on its own; count the ones that can.
        Some(w) => spreads.iter().filter(|(_, _, abs)| *abs / 2.0 > w).count(),
        None => 0,
    };
    let s = from_size.max(from_radius).clamp(1, columns.len().min(16));
    spreads.into_iter().take(s).map(|(a, _, _)| a).collect()
}

/// Split rows into sub-quadrants around the centroid, using only the
/// chosen `dims`: each contributes one bit (`value ≥ pivot`); NULLs
/// fall on the low side.
fn quadrant_split(
    columns: &[&Column],
    centroid: &[f64],
    rows: &[usize],
    dims: &[usize],
) -> Vec<Vec<usize>> {
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for &r in rows {
        let mut mask = 0u64;
        for (bit, &a) in dims.iter().enumerate() {
            if let Some(v) = columns[a].f64_at(r) {
                if v >= centroid[a] {
                    mask |= 1 << bit.min(63);
                }
            }
        }
        buckets.entry(mask).or_default().push(r);
    }
    // Deterministic order: sort by mask.
    let mut keys: Vec<u64> = buckets.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| buckets.remove(&k).expect("bucket exists"))
        .collect()
}

/// Chunk rows into consecutive pieces of at most `tau` rows.
fn chunk_rows(rows: &[usize], tau: usize) -> Vec<Vec<usize>> {
    rows.chunks(tau.max(1)).map(|c| c.to_vec()).collect()
}

impl QuadTree {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The flat leaf partitioning.
    pub fn leaves(&self) -> Partitioning {
        let mut groups = Vec::new();
        for node in &self.nodes {
            if node.children.is_empty() {
                groups.push(Group {
                    gid: groups.len() as i64 + 1,
                    rows: node.rows.clone(),
                    representative: node.centroid.clone(),
                    radius: node.radius,
                });
            }
        }
        Partitioning {
            attributes: self.attributes.clone(),
            groups,
            build_time: self.build_time,
        }
    }

    /// Dynamic partitioning (§4.1): traverse the hierarchy and return
    /// the *coarsest* partitioning whose groups all satisfy radius ≤
    /// `omega` and size ≤ `tau`. Leaves are taken as-is when no
    /// ancestor qualifies (they already satisfy the build-time
    /// conditions).
    pub fn coarsest_for(&self, omega: f64, tau: usize) -> Partitioning {
        let mut groups = Vec::new();
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            let qualifies = node.radius <= omega && node.rows.len() <= tau;
            if qualifies || node.children.is_empty() {
                groups.push(Group {
                    gid: groups.len() as i64 + 1,
                    rows: node.rows.clone(),
                    representative: node.centroid.clone(),
                    radius: node.radius,
                });
            } else {
                stack.extend(node.children.iter().map(|&c| c as usize));
            }
        }
        Partitioning {
            attributes: self.attributes.clone(),
            groups,
            build_time: self.build_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::{DataType, Schema, Value};

    /// A deterministic 2-D table with `n` points on a jittered grid.
    fn grid_table(n: usize) -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
        ]));
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            t.push_row(vec![
                Value::Float(next() * 100.0),
                Value::Float(next() * 100.0),
            ])
            .unwrap();
        }
        t
    }

    fn attrs() -> Vec<String> {
        vec!["x".into(), "y".into()]
    }

    #[test]
    fn size_threshold_is_enforced() {
        let t = grid_table(500);
        let p = Partitioner::new(PartitionConfig::by_size(attrs(), 40))
            .partition(&t)
            .unwrap();
        assert!(p.max_group_size() <= 40, "max size {}", p.max_group_size());
        assert!(p.is_disjoint_cover(500));
        assert!(p.num_groups() >= 500 / 40);
    }

    #[test]
    fn radius_limit_is_enforced() {
        let t = grid_table(300);
        let p =
            Partitioner::new(PartitionConfig::by_size(attrs(), usize::MAX).with_radius_limit(10.0))
                .partition(&t)
                .unwrap();
        assert!(p.max_radius() <= 10.0, "max radius {}", p.max_radius());
        assert!(p.is_disjoint_cover(300));
    }

    #[test]
    fn both_conditions_together() {
        let t = grid_table(400);
        let p = Partitioner::new(PartitionConfig::by_size(attrs(), 25).with_radius_limit(15.0))
            .partition(&t)
            .unwrap();
        assert!(p.max_group_size() <= 25);
        assert!(p.max_radius() <= 15.0);
    }

    #[test]
    fn single_group_when_thresholds_are_loose() {
        let t = grid_table(100);
        let p = Partitioner::new(PartitionConfig::by_size(attrs(), 1000))
            .partition(&t)
            .unwrap();
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.groups[0].size(), 100);
    }

    #[test]
    fn duplicate_heavy_data_is_chunked() {
        // 100 identical points: no spatial split possible, but τ=10
        // must still be met via chunking.
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for _ in 0..100 {
            t.push_row(vec![Value::Float(5.0)]).unwrap();
        }
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 10))
            .partition(&t)
            .unwrap();
        assert_eq!(p.num_groups(), 10);
        assert!(p.max_group_size() <= 10);
        assert_eq!(p.max_radius(), 0.0);
        assert!(p.is_disjoint_cover(100));
    }

    #[test]
    fn representatives_are_centroids() {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for v in [1.0, 3.0, 101.0, 103.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 2))
            .partition(&t)
            .unwrap();
        assert_eq!(p.num_groups(), 2);
        let mut reps: Vec<f64> = p.groups.iter().map(|g| g.representative[0]).collect();
        reps.sort_by(f64::total_cmp);
        assert_eq!(reps, vec![2.0, 102.0]);
    }

    #[test]
    fn nulls_fall_to_the_low_side_and_are_covered() {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for v in [
            Value::Float(0.0),
            Value::Null,
            Value::Float(100.0),
            Value::Float(99.0),
        ] {
            t.push_row(vec![v]).unwrap();
        }
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 2))
            .partition(&t)
            .unwrap();
        assert!(p.is_disjoint_cover(4));
    }

    #[test]
    fn deterministic_across_runs() {
        let t = grid_table(200);
        let mk = || {
            Partitioner::new(PartitionConfig::by_size(attrs(), 20))
                .partition(&t)
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.num_groups(), b.num_groups());
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.rows, gb.rows);
        }
    }

    #[test]
    fn tree_retains_hierarchy_and_dynamic_extraction_coarsens() {
        let t = grid_table(400);
        let tree =
            Partitioner::new(PartitionConfig::by_size(attrs(), usize::MAX).with_radius_limit(5.0))
                .build_tree(&t)
                .unwrap();
        assert!(tree.num_nodes() > 1);

        let fine = tree.coarsest_for(5.0, usize::MAX);
        let coarse = tree.coarsest_for(40.0, usize::MAX);
        assert!(coarse.num_groups() <= fine.num_groups());
        assert!(coarse.max_radius() <= 40.0);
        assert!(fine.max_radius() <= 5.0);
        assert!(fine.is_disjoint_cover(400));
        assert!(coarse.is_disjoint_cover(400));
    }

    #[test]
    fn pooled_build_is_identical_to_sequential() {
        let t = grid_table(3000); // above PARALLEL_STATS_MIN_ROWS
        let partitioner = Partitioner::new(PartitionConfig::by_size(attrs(), 100));
        let seq = partitioner.build_tree(&t).unwrap();
        let pool = ThreadPool::new(4);
        let par = partitioner.build_tree_with_pool(&t, &pool).unwrap();
        assert_eq!(seq.num_nodes(), par.num_nodes());
        for (a, b) in seq.nodes.iter().zip(&par.nodes) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.centroid, b.centroid);
            assert_eq!(a.radius.to_bits(), b.radius.to_bits());
            assert_eq!(a.children, b.children);
            assert_eq!(a.depth, b.depth);
        }
        let flat_seq = partitioner.partition(&t).unwrap();
        let flat_par = partitioner.partition_with_pool(&t, &pool).unwrap();
        for (ga, gb) in flat_seq.groups.iter().zip(&flat_par.groups) {
            assert_eq!(ga.rows, gb.rows);
        }
    }

    #[test]
    fn prefix_build_ignores_appended_rows() {
        let t = grid_table(300);
        let partitioner = Partitioner::new(PartitionConfig::by_size(attrs(), 20));
        let base = partitioner.partition(&t).unwrap();

        // Append rows (including extremes that would shift full-table
        // scales); the prefix build must not see them.
        let mut extended = t.clone();
        for (x, y) in [(1e6, -1e6), (50.0, 50.0), (-3.0, 7.0)] {
            extended
                .push_row(vec![Value::Float(x), Value::Float(y)])
                .unwrap();
        }
        let prefix = partitioner.partition_prefix(&extended, 300).unwrap();
        assert_eq!(base.num_groups(), prefix.num_groups());
        for (a, b) in base.groups.iter().zip(&prefix.groups) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(
                a.representative
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.representative
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(a.radius.to_bits(), b.radius.to_bits());
        }
        assert!(prefix.is_disjoint_cover(300));

        // The pooled prefix build is identical too.
        let pool = ThreadPool::new(4);
        let pooled = partitioner
            .partition_prefix_with_pool(&extended, 300, &pool)
            .unwrap();
        for (a, b) in prefix.groups.iter().zip(&pooled.groups) {
            assert_eq!(a.rows, b.rows);
        }
    }

    #[test]
    fn empty_table_yields_single_empty_group() {
        let t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 10))
            .partition(&t)
            .unwrap();
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.num_rows(), 0);
    }

    #[test]
    fn non_numeric_attribute_rejected() {
        let mut t = Table::new(Schema::from_pairs(&[("s", DataType::Str)]));
        t.push_row(vec!["a".into()]).unwrap();
        let r = Partitioner::new(PartitionConfig::by_size(vec!["s".into()], 10)).partition(&t);
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn no_attributes_panics() {
        Partitioner::new(PartitionConfig::by_size(vec![], 10));
    }

    #[test]
    fn skewed_data_respects_size_threshold() {
        // Heavy cluster near origin plus a few outliers: recursion must
        // keep splitting the dense region.
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for i in 0..256 {
            t.push_row(vec![Value::Float((i % 16) as f64 * 0.001)])
                .unwrap();
        }
        t.push_row(vec![Value::Float(1e6)]).unwrap();
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 16))
            .partition(&t)
            .unwrap();
        assert!(p.max_group_size() <= 16);
        assert!(p.is_disjoint_cover(257));
    }
}
