//! The flat partitioning artifact used at query time.

use std::collections::HashMap;
use std::time::Duration;

use paq_relational::schema::{ColumnDef, DataType, Schema};
use paq_relational::{RelError, RelResult, Table, Value};

/// The reserved name of the group-id column in representative
/// relations, matching the paper's `R̃(gid, attr₁, …, attr_k)`.
pub const GID_COLUMN: &str = "gid";

/// One partition group `G_j` with its representative tuple `t̃_j`.
#[derive(Debug, Clone)]
pub struct Group {
    /// Group id.
    pub gid: i64,
    /// Row indices (into the partitioned table) belonging to the group.
    pub rows: Vec<usize>,
    /// Centroid coordinates, parallel to the partitioning attributes.
    pub representative: Vec<f64>,
    /// Group radius (Definition 2).
    pub radius: f64,
}

impl Group {
    /// Group size `|G_j|`.
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// A complete partitioning `P = {(G_j, t̃_j)}` of a table.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// The partitioning attributes `A`.
    pub attributes: Vec<String>,
    /// All groups, in creation order. Row indices across groups form a
    /// disjoint cover of the partitioned table.
    pub groups: Vec<Group>,
    /// Wall-clock time spent building the partitioning (the paper's
    /// Figure 4 metric).
    pub build_time: Duration,
}

impl Partitioning {
    /// Number of groups `m`.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of partitioned rows.
    pub fn num_rows(&self) -> usize {
        self.groups.iter().map(Group::size).sum()
    }

    /// Size of the largest group (must be ≤ τ).
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(Group::size).max().unwrap_or(0)
    }

    /// Largest group radius (must be ≤ ω when a radius limit was set).
    pub fn max_radius(&self) -> f64 {
        self.groups.iter().map(|g| g.radius).fold(0.0, f64::max)
    }

    /// Build the representative relation `R̃(gid, attr₁, …)` (§4.1).
    ///
    /// `extra_attributes` lists numeric attributes *beyond* the
    /// partitioning attributes that must be materialized (as group
    /// means) because a query references them — this is what makes
    /// partitionings with coverage < 1 usable (§5.2.3).
    pub fn representative_table(
        &self,
        table: &Table,
        extra_attributes: &[String],
    ) -> RelResult<Table> {
        let mut attrs: Vec<String> = self.attributes.clone();
        for a in extra_attributes {
            if !attrs.contains(a) {
                attrs.push(a.clone());
            }
        }
        let mut cols = vec![ColumnDef::new(GID_COLUMN, DataType::Int)];
        for a in &attrs {
            let def = table.schema().column(a)?;
            if !def.ty.is_numeric() {
                return Err(RelError::TypeMismatch {
                    expected: "numeric attribute".into(),
                    found: format!("{a} ({})", def.ty),
                });
            }
            cols.push(ColumnDef::new(a.clone(), DataType::Float));
        }
        let schema = Schema::new(cols);
        let mut out = Table::with_capacity(schema, self.groups.len());

        // Cache columns once.
        let columns: Vec<&paq_relational::Column> = attrs
            .iter()
            .map(|a| table.column(a))
            .collect::<RelResult<_>>()?;
        for g in &self.groups {
            let mut row: Vec<Value> = Vec::with_capacity(attrs.len() + 1);
            row.push(Value::Int(g.gid));
            for (ai, col) in columns.iter().enumerate() {
                // Partitioning attributes may reuse the stored centroid;
                // extras are computed as the group mean on demand.
                let value = if ai < self.attributes.len() {
                    g.representative[ai]
                } else {
                    let mut sum = 0.0;
                    let mut cnt = 0usize;
                    for &r in &g.rows {
                        if let Some(v) = col.f64_at(r) {
                            sum += v;
                            cnt += 1;
                        }
                    }
                    if cnt == 0 {
                        0.0
                    } else {
                        sum / cnt as f64
                    }
                };
                row.push(Value::Float(value));
            }
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Restrict the partitioning to the rows flagged in `keep`
    /// (indexed by row id), renumbering rows by their new positions.
    ///
    /// This is the paper's method for deriving smaller datasets from one
    /// offline partitioning: "randomly removing tuples from the original
    /// partitions … is guaranteed to maintain the size condition"
    /// (§5.2.1). Representatives and radii are recomputed over the
    /// surviving rows; empty groups are dropped.
    pub fn restrict(&self, table: &Table, keep: &[bool]) -> RelResult<Partitioning> {
        assert_eq!(
            keep.len(),
            table.num_rows(),
            "keep mask must cover the table"
        );
        // New index of every kept row.
        let mut new_index = vec![usize::MAX; keep.len()];
        let mut next = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                new_index[i] = next;
                next += 1;
            }
        }
        let columns: Vec<&paq_relational::Column> = self
            .attributes
            .iter()
            .map(|a| table.column(a))
            .collect::<RelResult<_>>()?;

        let mut groups = Vec::new();
        for g in &self.groups {
            let survivors: Vec<usize> = g.rows.iter().copied().filter(|&r| keep[r]).collect();
            if survivors.is_empty() {
                continue;
            }
            let (representative, radius) = centroid_and_radius(&columns, &survivors);
            groups.push(Group {
                gid: g.gid,
                rows: survivors.iter().map(|&r| new_index[r]).collect(),
                representative,
                radius,
            });
        }
        Ok(Partitioning {
            attributes: self.attributes.clone(),
            groups,
            build_time: Duration::ZERO,
        })
    }

    /// Map each row to its group id; rows not covered map to `None`
    /// (possible only for malformed partitionings — asserted in tests).
    pub fn gid_of_rows(&self, num_rows: usize) -> Vec<Option<i64>> {
        let mut out = vec![None; num_rows];
        for g in &self.groups {
            for &r in &g.rows {
                out[r] = Some(g.gid);
            }
        }
        out
    }

    /// Append/overwrite a `gid` column on `table` (the paper's
    /// materialized representation of a partitioning).
    pub fn apply_gid_column(&self, table: &mut Table) -> RelResult<()> {
        let gids = self.gid_of_rows(table.num_rows());
        let values: Vec<Value> = gids
            .into_iter()
            .map(|g| g.map_or(Value::Null, Value::Int))
            .collect();
        if table.schema().contains(GID_COLUMN) {
            let col = table.column_mut(GID_COLUMN)?;
            *col = {
                let mut c = paq_relational::Column::new(DataType::Int);
                for v in values {
                    c.push(v)?;
                }
                c
            };
            Ok(())
        } else {
            table.add_column(ColumnDef::new(GID_COLUMN, DataType::Int), values)
        }
    }

    /// Group lookup by gid.
    pub fn group(&self, gid: i64) -> Option<&Group> {
        self.groups.iter().find(|g| g.gid == gid)
    }

    /// Merge groups pairwise (in creation order, which the quad-tree
    /// makes spatially adjacent), recomputing representatives and radii
    /// over `table`. Halves the number of groups; iterating reduces the
    /// partitioning toward a single group — §4.4's *iterative group
    /// merging* fallback for false infeasibility (strategy 4), whose
    /// limit is the unpartitioned (DIRECT) problem.
    pub fn merged_pairwise(&self, table: &Table) -> RelResult<Partitioning> {
        let columns: Vec<&paq_relational::Column> = self
            .attributes
            .iter()
            .map(|a| table.column(a))
            .collect::<RelResult<_>>()?;
        let mut groups = Vec::with_capacity(self.groups.len().div_ceil(2));
        for pair in self.groups.chunks(2) {
            let mut rows: Vec<usize> = pair.iter().flat_map(|g| g.rows.clone()).collect();
            rows.sort_unstable();
            let (representative, radius) = centroid_and_radius(&columns, &rows);
            groups.push(Group {
                gid: groups.len() as i64 + 1,
                rows,
                representative,
                radius,
            });
        }
        Ok(Partitioning {
            attributes: self.attributes.clone(),
            groups,
            build_time: Duration::ZERO,
        })
    }

    /// Absorb one appended row into the partitioning in place: route
    /// the row to the group whose representative is nearest (Euclidean
    /// distance over the partitioning attributes; NULL dimensions are
    /// treated as lying on the representative; ties break toward the
    /// earlier group in creation order) and recompute that group's
    /// centroid and radius exactly over its extended row set.
    ///
    /// `row` must be a row index of `table` not yet covered by any
    /// group — the caller appends rows in order, so after the patch the
    /// partitioning is a disjoint cover of `row + 1` rows again. The
    /// routing and the stats recompute are pure functions of the group
    /// state and the table columns, so applying the same append
    /// sequence to the same starting partitioning — live, on a cache
    /// entry, or during WAL replay — yields bit-identical groups.
    ///
    /// The size condition (≤ τ) is deliberately allowed to drift: the
    /// caller bounds the drift with its delta threshold and rebuilds
    /// past it.
    pub fn patch_append(&mut self, table: &Table, row: usize) -> RelResult<()> {
        let columns: Vec<&paq_relational::Column> = self
            .attributes
            .iter()
            .map(|a| table.column(a))
            .collect::<RelResult<_>>()?;
        if row >= table.num_rows() {
            return Err(RelError::Invalid(format!(
                "patch_append row {row} out of bounds ({} rows)",
                table.num_rows()
            )));
        }
        let mut best: Option<(usize, f64)> = None;
        for (gi, g) in self.groups.iter().enumerate() {
            let mut dist = 0.0_f64;
            for (ai, col) in columns.iter().enumerate() {
                let rep = g.representative.get(ai).copied().unwrap_or(0.0);
                let d = col.f64_at(row).map(|v| v - rep).unwrap_or(0.0);
                dist += d * d;
            }
            // Strict `<`: equal distances keep the earlier group.
            if best.map(|(_, b)| dist < b).unwrap_or(true) {
                best = Some((gi, dist));
            }
        }
        let (gi, _) = best.ok_or_else(|| {
            RelError::Invalid("cannot patch an empty partitioning (no groups)".into())
        })?;
        let group = &mut self.groups[gi];
        group.rows.push(row);
        let (representative, radius) = centroid_and_radius(&columns, &group.rows);
        group.representative = representative;
        group.radius = radius;
        Ok(())
    }

    /// Internal validity check used by tests and debug assertions:
    /// every row appears in exactly one group.
    pub fn is_disjoint_cover(&self, num_rows: usize) -> bool {
        let mut seen = vec![false; num_rows];
        for g in &self.groups {
            for &r in &g.rows {
                if r >= num_rows || seen[r] {
                    return false;
                }
                seen[r] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Compute centroid coordinates and radius for a row set over cached
/// attribute columns (NULLs skipped, as in the group-by substrate).
pub(crate) fn centroid_and_radius(
    columns: &[&paq_relational::Column],
    rows: &[usize],
) -> (Vec<f64>, f64) {
    let mut centroid = Vec::with_capacity(columns.len());
    let mut radius = 0.0_f64;
    for col in columns {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for &r in rows {
            if let Some(v) = col.f64_at(r) {
                sum += v;
                cnt += 1;
            }
        }
        let mean = if cnt == 0 { 0.0 } else { sum / cnt as f64 };
        for &r in rows {
            if let Some(v) = col.f64_at(r) {
                radius = radius.max((v - mean).abs());
            }
        }
        centroid.push(mean);
    }
    (centroid, radius)
}

/// Convenience: group sizes keyed by gid.
pub fn group_sizes(p: &Partitioning) -> HashMap<i64, usize> {
    p.groups.iter().map(|g| (g.gid, g.size())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::{DataType, Schema};

    fn table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
        ]));
        for (x, y) in [(0.0, 0.0), (2.0, 2.0), (10.0, 10.0), (12.0, 12.0)] {
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    fn partitioning() -> Partitioning {
        Partitioning {
            attributes: vec!["x".into(), "y".into()],
            groups: vec![
                Group {
                    gid: 1,
                    rows: vec![0, 1],
                    representative: vec![1.0, 1.0],
                    radius: 1.0,
                },
                Group {
                    gid: 2,
                    rows: vec![2, 3],
                    representative: vec![11.0, 11.0],
                    radius: 1.0,
                },
            ],
            build_time: Duration::ZERO,
        }
    }

    #[test]
    fn aggregates_over_groups() {
        let p = partitioning();
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.num_rows(), 4);
        assert_eq!(p.max_group_size(), 2);
        assert_eq!(p.max_radius(), 1.0);
        assert!(p.is_disjoint_cover(4));
        assert_eq!(group_sizes(&p)[&2], 2);
    }

    #[test]
    fn representative_table_has_gid_and_centroids() {
        let t = table();
        let p = partitioning();
        let r = p.representative_table(&t, &[]).unwrap();
        assert_eq!(r.schema().names(), vec![GID_COLUMN, "x", "y"]);
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.value(0, "x").unwrap(), Value::Float(1.0));
        assert_eq!(r.value(1, "y").unwrap(), Value::Float(11.0));
    }

    #[test]
    fn extra_attributes_materialize_group_means() {
        let mut t = table();
        t.add_column(
            ColumnDef::new("z", DataType::Float),
            vec![
                Value::Float(1.0),
                Value::Float(3.0),
                Value::Float(10.0),
                Value::Null,
            ],
        )
        .unwrap();
        let p = partitioning();
        let r = p.representative_table(&t, &["z".into()]).unwrap();
        assert_eq!(r.value(0, "z").unwrap(), Value::Float(2.0));
        // Group 2's z mean skips the NULL.
        assert_eq!(r.value(1, "z").unwrap(), Value::Float(10.0));
    }

    #[test]
    fn restrict_drops_rows_and_renumbers() {
        let t = table();
        let p = partitioning();
        // Drop rows 1 and 2.
        let keep = vec![true, false, false, true];
        let r = p.restrict(&t, &keep).unwrap();
        assert_eq!(r.num_groups(), 2);
        assert_eq!(r.groups[0].rows, vec![0]);
        assert_eq!(r.groups[1].rows, vec![1]);
        // Singleton groups have zero radius and exact centroids.
        assert_eq!(r.groups[0].radius, 0.0);
        assert_eq!(r.groups[0].representative, vec![0.0, 0.0]);
        assert_eq!(r.groups[1].representative, vec![12.0, 12.0]);
        assert!(r.is_disjoint_cover(2));
    }

    #[test]
    fn restrict_drops_empty_groups() {
        let t = table();
        let p = partitioning();
        let keep = vec![true, true, false, false];
        let r = p.restrict(&t, &keep).unwrap();
        assert_eq!(r.num_groups(), 1);
        assert_eq!(r.groups[0].gid, 1);
    }

    #[test]
    fn restrict_never_grows_groups() {
        // The size condition is maintained under restriction (§5.2.1).
        let t = table();
        let p = partitioning();
        let keep = vec![true, true, true, false];
        let r = p.restrict(&t, &keep).unwrap();
        assert!(r.max_group_size() <= p.max_group_size());
    }

    #[test]
    fn apply_gid_column_writes_assignments() {
        let mut t = table();
        let p = partitioning();
        p.apply_gid_column(&mut t).unwrap();
        assert_eq!(t.value(0, GID_COLUMN).unwrap(), Value::Int(1));
        assert_eq!(t.value(3, GID_COLUMN).unwrap(), Value::Int(2));
        // Idempotent re-apply (overwrite path).
        p.apply_gid_column(&mut t).unwrap();
        assert_eq!(t.value(2, GID_COLUMN).unwrap(), Value::Int(2));
    }

    #[test]
    fn disjoint_cover_detects_overlap_and_gaps() {
        let mut p = partitioning();
        assert!(p.is_disjoint_cover(4));
        p.groups[1].rows = vec![1, 3]; // row 1 duplicated, row 2 missing
        assert!(!p.is_disjoint_cover(4));
    }

    #[test]
    fn merged_pairwise_halves_groups_and_recomputes() {
        let t = table();
        let p = partitioning();
        let merged = p.merged_pairwise(&t).unwrap();
        assert_eq!(merged.num_groups(), 1);
        assert_eq!(merged.groups[0].rows, vec![0, 1, 2, 3]);
        assert_eq!(merged.groups[0].representative, vec![6.0, 6.0]);
        assert_eq!(merged.groups[0].radius, 6.0);
        assert!(merged.is_disjoint_cover(4));
        // Merging a single group is a fixed point.
        let again = merged.merged_pairwise(&t).unwrap();
        assert_eq!(again.num_groups(), 1);
    }

    #[test]
    fn merged_pairwise_odd_group_count() {
        let t = table();
        let mut p = partitioning();
        p.groups.push(Group {
            gid: 3,
            rows: vec![],
            representative: vec![0.0, 0.0],
            radius: 0.0,
        });
        // 3 groups → 2 (pair + lone straggler).
        let merged = p.merged_pairwise(&t).unwrap();
        assert_eq!(merged.num_groups(), 2);
    }

    #[test]
    fn patch_append_routes_to_nearest_group_and_recomputes_stats() {
        let mut t = table();
        let mut p = partitioning();
        // (11.5, 12.5) is nearest group 2's representative (11, 11).
        t.push_row(vec![Value::Float(11.5), Value::Float(12.5)])
            .unwrap();
        p.patch_append(&t, 4).unwrap();
        assert_eq!(p.groups[1].rows, vec![2, 3, 4]);
        assert!(p.is_disjoint_cover(5));
        // Exact recompute over {10, 12, 11.5} and {10, 12, 12.5}.
        let rep = &p.groups[1].representative;
        assert!((rep[0] - 33.5 / 3.0).abs() < 1e-12);
        assert!((rep[1] - 34.5 / 3.0).abs() < 1e-12);
        // Group 1 untouched.
        assert_eq!(p.groups[0].rows, vec![0, 1]);
        assert_eq!(p.groups[0].representative, vec![1.0, 1.0]);
    }

    #[test]
    fn patch_append_is_deterministic_under_replayed_sequences() {
        let mut t1 = table();
        let mut t2 = table();
        let mut p1 = partitioning();
        let mut p2 = partitioning();
        for (i, (x, y)) in [(0.5, 0.25), (11.0, 9.5), (3.0, 3.0), (6.0, 6.0)]
            .into_iter()
            .enumerate()
        {
            t1.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
            p1.patch_append(&t1, 4 + i).unwrap();
        }
        for (i, (x, y)) in [(0.5, 0.25), (11.0, 9.5), (3.0, 3.0), (6.0, 6.0)]
            .into_iter()
            .enumerate()
        {
            t2.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
            p2.patch_append(&t2, 4 + i).unwrap();
        }
        for (a, b) in p1.groups.iter().zip(&p2.groups) {
            assert_eq!(a.rows, b.rows);
            // Bit-identical floats, not approximately equal.
            assert_eq!(
                a.representative
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.representative
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(a.radius.to_bits(), b.radius.to_bits());
        }
    }

    #[test]
    fn patch_append_null_dims_sit_on_the_representative() {
        let mut t = table();
        let mut p = partitioning();
        t.push_row(vec![Value::Null, Value::Float(1.5)]).unwrap();
        // Only y participates: |1.5 - 1| < |1.5 - 11| ⇒ group 1.
        p.patch_append(&t, 4).unwrap();
        assert_eq!(p.groups[0].rows, vec![0, 1, 4]);
    }

    #[test]
    fn patch_append_rejects_empty_partitioning_and_bad_rows() {
        let t = table();
        let mut empty = Partitioning {
            attributes: vec!["x".into(), "y".into()],
            groups: vec![],
            build_time: Duration::ZERO,
        };
        assert!(empty.patch_append(&t, 0).is_err());
        let mut p = partitioning();
        assert!(p.patch_append(&t, 99).is_err());
    }

    #[test]
    fn centroid_and_radius_basics() {
        let t = table();
        let cols = vec![t.column("x").unwrap(), t.column("y").unwrap()];
        let (c, r) = centroid_and_radius(&cols, &[0, 1, 2, 3]);
        assert_eq!(c, vec![6.0, 6.0]);
        assert_eq!(r, 6.0);
    }
}
