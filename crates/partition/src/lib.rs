#![warn(missing_docs)]

//! # paq-partition — offline data partitioning for SKETCHREFINE
//!
//! SKETCHREFINE (§4 of the paper) relies on an *offline* partitioning of
//! the input relation into groups of similar tuples, each represented by
//! its centroid. This crate implements:
//!
//! * [`quadtree`] — the paper's partitioning method: a k-dimensional
//!   quad tree that recursively splits any group violating the **size
//!   threshold τ** (Definition 1) or the **radius limit ω**
//!   (Definition 2), pivoting each split on the group centroid. The
//!   full hierarchy is retained, which also enables the paper's
//!   *dynamic partitioning* discussion (§4.1): extracting, at query
//!   time, the coarsest partitioning satisfying a desired radius.
//! * [`partitioning`] — the flat partitioning artifact used at query
//!   time: groups with row lists, centroid representatives, radii, a
//!   representative-relation builder, and sub-sampling (`restrict`) used
//!   by the scalability experiments to derive smaller datasets while
//!   preserving the size condition (§5.2.1).
//! * [`kmeans`] — a Lloyd's-iteration baseline partitioner. The paper
//!   discusses why off-the-shelf clustering (k-means et al.) fits
//!   poorly (no τ/ω control); this implementation exists to make that
//!   comparison measurable.
//! * [`PartitionConfig::omega_for_epsilon`] — the Theorem 3 radius
//!   derivation (Eq. 1) mapping a desired approximation `ε` to a radius
//!   limit `ω`.

pub mod config;
pub mod kmeans;
pub mod partitioning;
pub mod quadtree;

pub use config::PartitionConfig;
pub use kmeans::{kmeans_partition, kmeans_partition_with_pool, KMeansConfig};
pub use partitioning::{Group, Partitioning};
pub use quadtree::{Partitioner, QuadTree};
