//! The chaos integration suite: a real server (worker pool, shared
//! catalog, durable store) driven under seeded fault plans, asserting
//! the robustness contract end to end:
//!
//! * **no panics** — every injected fault surfaces as a typed error,
//!   never a crashed handler (`handler_panics() == 0` throughout);
//! * **durability** — every *acknowledged* mutation survives poisoning
//!   the WAL and reopening the directory; a torn WAL tail is truncated,
//!   not replayed; a failed snapshot leaves the WAL authoritative;
//! * **convergence** — retrying clients with idempotency tokens reach
//!   the correct final state through flaky transports, with no
//!   duplicated mutations;
//! * **determinism** — a fixed plan seed produces the identical outcome
//!   with a 1-worker and a 4-worker server.
//!
//! The server worker-pool size for the traffic tests follows
//! `PAQ_THREADS` (the CI matrix runs 1 and 4); the determinism test
//! pins both counts itself.

use std::io::Write;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use std::{env, fs};

use paq_chaos::{sites, ChaosStream, FaultPlan, Trigger};
use paq_db::{DbConfig, Durability, PackageDb};
use paq_relational::{DataType, Schema, Table, Value};
use paq_server::wire::{Request, Response};
use paq_server::{
    pipe_listener, Acceptor, Client, ClientError, FaultKind, RequestBuilder, RetryPolicy,
    RetryingClient, Server, ServerConfig,
};

/// Server pool size under test (`PAQ_THREADS`, default 4).
fn worker_count() -> usize {
    env::var("PAQ_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Run `body` against a live server, then shut the server down — even
/// when `body` panics, so a failed assertion fails the test instead of
/// deadlocking the serve thread's join.
fn with_server<A, R>(server: &Server, acceptor: A, body: impl FnOnce() -> R) -> R
where
    A: Acceptor + Send,
{
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(acceptor));
        let result = std::panic::catch_unwind(AssertUnwindSafe(body));
        server.trigger_shutdown();
        match result {
            Ok(value) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn schema() -> Schema {
    Schema::from_pairs(&[("value", DataType::Float), ("weight", DataType::Float)])
}

/// Deterministic rows, same generator family as the other suites.
fn items_table(n: usize, salt: u64) -> Table {
    let mut t = Table::new(schema());
    let mut state = salt | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..n {
        let v = (next() % 100) as f64 / 10.0 + 1.0;
        let w = (next() % 50) as f64 / 10.0 + 0.5;
        t.push_row(vec![Value::Float(v), Value::Float(w)]).unwrap();
    }
    t
}

fn row() -> Vec<Value> {
    vec![Value::Float(3.25), Value::Float(1.5)]
}

fn query(table: &str) -> String {
    format!(
        "SELECT PACKAGE(R) AS P FROM {table} R REPEAT 0 \
         SUCH THAT COUNT(P.*) = 2 AND SUM(P.weight) <= 1000 MAXIMIZE SUM(P.value)"
    )
}

/// The suite's standard query against `table`, pinned to a
/// single-threaded solve so packages are bit-identical across runs.
fn pinned_query(table: &str) -> RequestBuilder {
    RequestBuilder::query(query(table))
        .relation(table)
        .threads(1)
}

/// Wait (bounded) for a server-side condition that trails a client-side
/// observation, e.g. a mutation applied whose ack was lost in flight.
fn settle(mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !condition() {
        assert!(Instant::now() < deadline, "condition never settled");
        std::thread::sleep(Duration::from_millis(2));
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = env::temp_dir().join(format!("paq-chaos-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn storage_fault(result: Result<u64, ClientError>) -> paq_server::Fault {
    match result {
        Err(ClientError::Server(fault)) => {
            assert_eq!(fault.kind, FaultKind::Storage, "{fault:?}");
            fault
        }
        other => panic!("expected a typed Storage fault, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Plan 1: a torn WAL write mid-traffic. The store must fail-stop with
// typed Storage faults, reads must keep working, and reopening the
// directory must recover exactly the acknowledged appends — the torn
// tail is truncated, never replayed, never re-acked.
// ---------------------------------------------------------------------
#[test]
fn wal_torn_write_poisons_store_and_acked_appends_survive_reopen() {
    let dir = TempDir::new("wal-torn");
    let plan = FaultPlan::new(0xC4A0_0001);
    // WAL writes: #1 = RegisterTable, #2.. = appends. Tear append #3.
    plan.on(sites::WAL_WRITE, Trigger::ShortWriteNth(4));

    let db = PackageDb::open(
        DbConfig::default(),
        Durability {
            injector: Some(Arc::new(plan.clone())),
            ..Durability::new(&dir.0)
        },
    )
    .expect("open durable db");

    let server = Server::with_config(
        db.session(),
        ServerConfig {
            workers: worker_count(),
            ..ServerConfig::default()
        },
    );
    let (connector, listener) = pipe_listener();
    let acked = with_server(&server, listener, || {
        let mut client = Client::over(connector.connect().unwrap());
        client
            .register_table("Items", &items_table(60, 0xA11CE))
            .unwrap();

        // Append until the injected tear: exactly 2 acks, then faults.
        let mut acked = 0u64;
        let mut torn = None;
        for _ in 0..5 {
            match client.append_row("Items", row()) {
                Ok(_) => acked += 1,
                Err(e) => {
                    torn = Some(storage_fault(Err(e)));
                    break;
                }
            }
        }
        let torn = torn.expect("the torn write must surface");
        assert_eq!(acked, 2, "appends before the tear are acked");
        assert!(
            torn.message.contains("chaos"),
            "fault names the injected cause: {}",
            torn.message
        );

        // Fail-stop: the poisoned store refuses further mutations with
        // a typed fault (no gap in the log, no silent un-durable acks).
        storage_fault(client.append_row("Items", row()));

        // The read path is unaffected: queries still answer.
        let exec = pinned_query("Items").send(&mut client).unwrap();
        assert!(!exec.package().is_empty());
        let stats = client.stats().unwrap();
        let durable = stats.durability.expect("durable server reports counters");
        assert!(durable.wal_errors >= 2, "{durable:?}");
        acked
    });
    assert_eq!(server.handler_panics(), 0, "faults, not panics");
    drop(server);
    drop(db);

    // Reopen without injection: recovery sees the torn tail, drops it,
    // and republishes exactly the acknowledged state.
    let db = PackageDb::open(DbConfig::default(), Durability::new(&dir.0)).expect("reopen");
    assert_eq!(
        db.table("Items").unwrap().num_rows() as u64,
        60 + acked,
        "exactly the acknowledged appends survive"
    );
    assert!(
        db.durability_stats().unwrap().wal_tail_dropped_bytes > 0,
        "the torn tail was truncated, not replayed"
    );
}

// ---------------------------------------------------------------------
// Plans 2 and 3: snapshot fsync / rename failures. The tmp+rename
// discipline must leave the WAL authoritative: the failed snapshot is
// invisible, the store keeps accepting appends, a later snapshot
// succeeds, and reopening recovers everything.
// ---------------------------------------------------------------------
#[test]
fn snapshot_failures_leave_wal_authoritative() {
    for (tag, site) in [
        ("sync", sites::SNAPSHOT_SYNC),
        ("rename", sites::SNAPSHOT_RENAME),
    ] {
        let dir = TempDir::new(&format!("snap-{tag}"));
        let plan = FaultPlan::new(0xC4A0_0002);
        plan.on(site, Trigger::FailNth(1));

        let db = PackageDb::open(
            DbConfig::default(),
            Durability {
                injector: Some(Arc::new(plan.clone())),
                ..Durability::new(&dir.0)
            },
        )
        .expect("open durable db");
        db.register_table("Items", items_table(30, 0xBEEF));
        for _ in 0..3 {
            db.append_row("Items", row()).unwrap();
        }

        let err = db.snapshot_now().expect_err("injected snapshot failure");
        assert!(err.to_string().contains("chaos"), "{err} ({site})");

        // Snapshot failure is not fail-stop: the WAL is untouched and
        // the store keeps accepting appends.
        db.append_row("Items", row())
            .expect("store is not poisoned");

        // The trigger fired once; the retried snapshot goes through.
        db.snapshot_now().expect("snapshot retry succeeds");
        db.append_row("Items", row()).unwrap();
        drop(db);

        // Reopen clean: snapshot + WAL tail replay to the full state.
        let db = PackageDb::open(DbConfig::default(), Durability::new(&dir.0)).expect("reopen");
        assert_eq!(db.table("Items").unwrap().num_rows(), 35, "({site})");
        let stats = db.durability_stats().unwrap();
        assert!(stats.last_snapshot_lsn > 0, "{stats:?} ({site})");
        assert_eq!(plan.injected(), 1, "({site})");
    }
}

// ---------------------------------------------------------------------
// Plan 4: a flaky client transport (periodic read & write failures).
// A RetryingClient must converge to the exact intended state — every
// mutation applied exactly once (tokens + server dedupe), queries
// answered — while the server survives the mid-frame disconnects its
// reconnects leave behind.
// ---------------------------------------------------------------------
#[test]
fn retrying_client_converges_through_flaky_transport() {
    let db = PackageDb::with_config(DbConfig::default());
    let server = Server::with_config(
        db.session(),
        ServerConfig {
            workers: worker_count(),
            ..ServerConfig::default()
        },
    );
    let (connector, listener) = pipe_listener();
    let plan = FaultPlan::new(0xC4A0_0004);
    plan.on("client.write", Trigger::FailEveryK(6));
    plan.on("client.read", Trigger::FailEveryK(9));
    // Observability ride-along: plan and retrying client both mirror
    // into the database's registry, so the chaos run's injections and
    // the retries they caused surface in the same metrics snapshot as
    // the engine figures.
    plan.attach_registry(db.obs_registry());

    with_server(&server, listener, || {
        let mut client = RetryingClient::new(
            || {
                connector
                    .connect()
                    .map(|conn| ChaosStream::new(conn, &plan, "client"))
            },
            RetryPolicy {
                max_retries: 12,
                base_backoff: Duration::from_millis(1),
                jitter: 0.0,
                seed: 7,
                ..RetryPolicy::default()
            },
        );
        client.attach_registry(db.obs_registry());

        client
            .register_table("Items", &items_table(30, 0xF00D))
            .unwrap();
        for _ in 0..8 {
            client.append_row("Items", row()).unwrap();
        }
        let exec = pinned_query("Items").send_retrying(&mut client).unwrap();
        assert_eq!(exec.rows, 38, "all 8 appends applied");
        assert!(!exec.package().is_empty());

        let stats = client.retry_stats();
        assert!(stats.retries >= 1, "the plan must have bitten: {stats:?}");
        assert!(stats.reconnects > 1, "retries reconnect: {stats:?}");
    });
    assert!(plan.injected() >= 1, "{:?}", plan.report());
    assert_eq!(server.handler_panics(), 0, "faults, not panics");
    // Exactly once despite retries: tokens + dedupe, not luck.
    assert_eq!(db.table("Items").unwrap().num_rows(), 38);
    // The injections and the retries they caused are visible in the
    // shared metrics snapshot, consistent with the suite's own view.
    let snapshot = db.obs_registry().snapshot();
    assert_eq!(snapshot.counter("chaos.faults_injected"), plan.injected());
    assert!(snapshot.counter("chaos.calls") >= plan.injected());
    assert!(
        snapshot.counter("client.retries_total") >= 1,
        "injected faults must have caused counted retries"
    );
    assert!(snapshot.counter("client.reconnects") > 1);
}

// ---------------------------------------------------------------------
// Plan 5: a lost acknowledgement. The mutation applied but the ack
// never arrived; the retry carries the same token and must be answered
// from the server's ack memory — same version, no duplicate row.
// ---------------------------------------------------------------------
#[test]
fn lost_ack_retry_with_token_is_deduplicated() {
    let db = PackageDb::with_config(DbConfig::default());
    db.register_table("Items", items_table(30, 0x10CA));
    let server = Server::new(db.session());
    let (connector, listener) = pipe_listener();
    let plan = FaultPlan::new(0xC4A0_0005);
    // The request writes go through; the very first read (the ack)
    // dies. From the client's view the append may or may not have
    // happened.
    plan.on("lossy.read", Trigger::FailNth(1));

    with_server(&server, listener, || {
        const TOKEN: u64 = 0x7EA_0001;

        let mut lossy = Client::over(ChaosStream::new(
            connector.connect().unwrap(),
            &plan,
            "lossy",
        ));
        let lost = lossy
            .append_row_with_token("Items", row(), Some(TOKEN))
            .expect_err("the ack must be lost");
        assert!(lost.is_transient(), "lost ack is retryable: {lost:?}");
        drop(lossy); // the reconnect a retrying client would do

        // The server did apply the row (the ack was lost, not the
        // mutation); wait out the in-flight race before asserting.
        settle(|| db.table("Items").unwrap().num_rows() == 31);
        let applied_version = db.table_version("Items").unwrap();

        // Retry with the same token: answered from ack memory.
        let mut probe = Client::over(connector.connect().unwrap());
        let version = probe
            .append_row_with_token("Items", row(), Some(TOKEN))
            .expect("deduped retry succeeds");
        assert_eq!(version, applied_version, "the recorded ack is replayed");
        assert_eq!(db.table("Items").unwrap().num_rows(), 31, "no duplicate");
        assert_eq!(server.deduped_mutations(), 1);

        // A *different* token is a genuinely new mutation.
        let version = probe
            .append_row_with_token("Items", row(), Some(TOKEN + 1))
            .unwrap();
        assert!(version > applied_version);
        assert_eq!(db.table("Items").unwrap().num_rows(), 32);
    });
    assert_eq!(server.handler_panics(), 0);
}

// ---------------------------------------------------------------------
// Plan 6: slowloris. A client delivers a frame header and stalls
// mid-frame; the started-frame deadline must free the handler with a
// typed Timeout fault, and the server must keep serving others.
// ---------------------------------------------------------------------
#[test]
fn stalled_mid_frame_client_gets_typed_timeout_and_server_survives() {
    let db = PackageDb::with_config(DbConfig::default());
    db.register_table("Items", items_table(30, 0x510));
    let server = Server::with_config(
        db.session(),
        ServerConfig {
            frame_deadline: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    );
    let (connector, listener) = pipe_listener();
    let plan = FaultPlan::new(0xC4A0_0006);
    // First write (the header) lands; the second (the body) stalls far
    // past the server's 150 ms started-frame deadline.
    plan.on(
        "slow.write",
        Trigger::Delay {
            every: 2,
            delay: Duration::from_millis(500),
        },
    );

    with_server(&server, listener, || {
        let mut slow = ChaosStream::new(connector.connect().unwrap(), &plan, "slow");
        let payload = Request::Stats.encode();
        let frame = {
            let mut f = (payload.len() as u32).to_be_bytes().to_vec();
            f.extend_from_slice(&payload);
            f
        };
        // Header now, body after the injected 500 ms stall.
        slow.write_all(&frame[..4]).unwrap();
        let _ = slow.write_all(&frame[4..]); // may race the server closing
        let _ = slow.flush();

        // The server answered with a typed Timeout, then closed.
        match Response::read_from(&mut slow) {
            Ok(Some(Response::Error(fault))) => {
                assert_eq!(fault.kind, FaultKind::Timeout);
                assert!(fault.message.contains("incomplete"), "{}", fault.message);
            }
            other => panic!("expected a typed Timeout fault, got {other:?}"),
        }
        assert!(matches!(Response::read_from(&mut slow), Ok(None)), "closed");

        // The handler is free again: a healthy client is served.
        let mut healthy = Client::over(connector.connect().unwrap());
        let exec = pinned_query("Items").send(&mut healthy).unwrap();
        assert!(!exec.package().is_empty());
    });
    assert_eq!(server.frame_timeouts(), 1);
    assert_eq!(server.handler_panics(), 0);
}

// ---------------------------------------------------------------------
// Overload: a single-slot server rejects with Busy + retry_after; a
// retrying client paces itself on the hint and converges once the slot
// frees up.
// ---------------------------------------------------------------------
#[test]
fn busy_overload_retry_honors_hint_and_converges() {
    let db = PackageDb::with_config(DbConfig::default());
    db.register_table("Items", items_table(30, 0xB054));
    let server = Server::with_config(
        db.session(),
        ServerConfig {
            workers: 1,
            max_in_flight: 1,
            busy_retry_after: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );
    let (connector, listener) = pipe_listener();
    with_server(&server, listener, || {
        // Occupy the single slot (a served round trip proves it).
        let mut holder = Client::over(connector.connect().unwrap());
        holder.stats().unwrap();

        std::thread::scope(|inner| {
            let contender = inner.spawn(|| {
                let mut client = RetryingClient::new(
                    || connector.connect(),
                    RetryPolicy {
                        max_retries: 50,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(20),
                        seed: 11,
                        ..RetryPolicy::default()
                    },
                );
                let exec = pinned_query("Items")
                    .send_retrying(&mut client)
                    .expect("retrying client must converge");
                (exec, client.retry_stats())
            });
            // Let the contender eat Busy rejections, then free the slot.
            std::thread::sleep(Duration::from_millis(50));
            drop(holder);

            let (exec, stats) = contender.join().unwrap();
            assert!(!exec.package().is_empty());
            assert!(stats.busy_hints_honored >= 1, "{stats:?}");
            assert!(stats.retries >= 1, "{stats:?}");
        });
        assert!(server.busy_rejections() >= 1);
    });
    assert_eq!(server.handler_panics(), 0);
}

// ---------------------------------------------------------------------
// Deadlines: a zero deadline is answered immediately with a typed
// Timeout; a generous one changes nothing.
// ---------------------------------------------------------------------
#[test]
fn request_deadlines_surface_typed_timeouts() {
    let db = PackageDb::with_config(DbConfig::default());
    db.register_table("Items", items_table(30, 0xDEAD));
    let server = Server::new(db.session());
    let (connector, listener) = pipe_listener();
    with_server(&server, listener, || {
        let mut client = Client::over(connector.connect().unwrap());

        match pinned_query("Items").deadline_ms(0).send(&mut client) {
            Err(ClientError::Server(fault)) => assert_eq!(fault.kind, FaultKind::Timeout),
            other => panic!("expected Timeout, got {other:?}"),
        }

        let exec = pinned_query("Items")
            .deadline_ms(60_000)
            .send(&mut client)
            .unwrap();
        assert!(!exec.package().is_empty());
    });
    assert_eq!(server.handler_panics(), 0);
}

// ---------------------------------------------------------------------
// Determinism: the same seeded plans, the same client sequences, a
// 1-worker and a 4-worker server — identical final state and packages.
// ---------------------------------------------------------------------
#[test]
fn fixed_seed_chaos_outcome_is_identical_across_worker_counts() {
    #[derive(Debug, PartialEq)]
    struct Outcome {
        rows: u64,
        pairs: Vec<(u64, u64)>,
    }

    let run = |workers: usize| -> Vec<Outcome> {
        let db = PackageDb::with_config(DbConfig::default());
        let server = Server::with_config(
            db.session(),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        );
        let (connector, listener) = pipe_listener();
        let outcomes = with_server(&server, listener, || {
            std::thread::scope(|clients| {
                let handles: Vec<_> = (0..2u64)
                    .map(|c| {
                        let connector = &connector;
                        clients.spawn(move || {
                            // Each client gets its own table, plan, and
                            // seeds, so cross-client interleaving cannot
                            // leak into any per-client decision stream.
                            let plan = FaultPlan::new(0xD00D_0000 + c);
                            let label = format!("c{c}");
                            plan.on(format!("{label}.write"), Trigger::FailEveryK(6));
                            plan.on(format!("{label}.read"), Trigger::FailEveryK(9));
                            let mut client = RetryingClient::new(
                                || {
                                    connector
                                        .connect()
                                        .map(|conn| ChaosStream::new(conn, &plan, &label))
                                },
                                RetryPolicy {
                                    max_retries: 12,
                                    base_backoff: Duration::from_millis(1),
                                    jitter: 0.0,
                                    seed: 100 + c,
                                    ..RetryPolicy::default()
                                },
                            );
                            let table = format!("T{c}");
                            client
                                .register_table(&table, &items_table(20, 0xACE + c))
                                .unwrap();
                            for _ in 0..4 {
                                client.append_row(&table, row()).unwrap();
                            }
                            let exec = pinned_query(&table).send_retrying(&mut client).unwrap();
                            Outcome {
                                rows: exec.rows,
                                pairs: exec.pairs.clone(),
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        });
        assert_eq!(server.handler_panics(), 0);
        for c in 0..2 {
            assert_eq!(db.table(&format!("T{c}")).unwrap().num_rows(), 24);
        }
        outcomes
    };

    let single = run(1);
    let quad = run(4);
    assert_eq!(
        single, quad,
        "fixed seed ⇒ identical outcome at 1 and 4 workers"
    );
    assert_eq!(single[0].rows, 24);
}

// ---------------------------------------------------------------------
// Plan 9: a lost acknowledgement straddling a restart. The mutation
// applied and its token rode the WAL record; the server process then
// goes away before the retry arrives. Recovery restores the acked
// token, a fresh server seeds its dedupe window from it, and the retry
// is re-acknowledged with its original version — not re-applied.
// ---------------------------------------------------------------------
#[test]
fn lost_ack_retry_across_restart_is_deduplicated() {
    let dir = TempDir::new("ack-restart");
    const TOKEN: u64 = 0x7EA_0002;
    let applied_version = {
        let db = PackageDb::open(DbConfig::default(), Durability::new(&dir.0)).unwrap();
        db.register_table("Items", items_table(30, 0xACED));
        let server = Server::new(db.session());
        let (connector, listener) = pipe_listener();
        let plan = FaultPlan::new(0xC4A0_0009);
        // Request write goes through; the ack read dies.
        plan.on("lossy.read", Trigger::FailNth(1));
        with_server(&server, listener, || {
            let mut lossy = Client::over(ChaosStream::new(
                connector.connect().unwrap(),
                &plan,
                "lossy",
            ));
            let lost = lossy
                .append_row_with_token("Items", row(), Some(TOKEN))
                .expect_err("the ack must be lost");
            assert!(lost.is_transient(), "lost ack is retryable: {lost:?}");
            drop(lossy);
            settle(|| db.table("Items").unwrap().num_rows() == 31);
        });
        assert_eq!(server.handler_panics(), 0);
        db.table_version("Items").unwrap()
        // db and server drop here: the process-restart boundary. The
        // append (and its token) is already on disk — SyncPolicy::Always.
    };

    // Reopen the directory: recovery restores the acked token from the
    // WAL, and a fresh server seeds its dedupe window from it.
    let db = PackageDb::open(DbConfig::default(), Durability::new(&dir.0)).unwrap();
    let stats = db.durability_stats().unwrap();
    assert_eq!(stats.recovered_acks, 1, "{stats:?}");
    let server = Server::new(db.session());
    let (connector, listener) = pipe_listener();
    with_server(&server, listener, || {
        let mut probe = Client::over(connector.connect().unwrap());
        let version = probe
            .append_row_with_token("Items", row(), Some(TOKEN))
            .expect("retry across restart is deduplicated");
        assert_eq!(version, applied_version, "the persisted ack is replayed");
        assert_eq!(
            db.table("Items").unwrap().num_rows(),
            31,
            "no duplicate row across the restart"
        );
        assert_eq!(server.deduped_mutations(), 1);

        // A *different* token is a genuinely new mutation.
        let version = probe
            .append_row_with_token("Items", row(), Some(TOKEN + 1))
            .unwrap();
        assert!(version > applied_version);
        assert_eq!(db.table("Items").unwrap().num_rows(), 32);
    });
    assert_eq!(server.handler_panics(), 0);
}

// The acked-token window must also survive WAL truncation: a snapshot
// subsumes the log, so the acks ride the snapshot image too.
#[test]
fn acked_tokens_survive_snapshot_truncation_and_restart() {
    let dir = TempDir::new("ack-snapshot");
    const TOKEN: u64 = 0x7EA_0003;
    let applied_version = {
        let db = PackageDb::open(DbConfig::default(), Durability::new(&dir.0)).unwrap();
        db.register_table("Items", items_table(30, 0x5A17));
        let v = db
            .append_row_with_token("Items", row(), Some(TOKEN))
            .unwrap();
        // Snapshot *after* the acked append: the WAL is truncated, so
        // the only copy of the ack is the snapshot's.
        db.snapshot_now().unwrap();
        v
    };

    let db = PackageDb::open(DbConfig::default(), Durability::new(&dir.0)).unwrap();
    let stats = db.durability_stats().unwrap();
    assert_eq!(stats.recovered_acks, 1, "{stats:?}");
    assert_eq!(stats.wal_replayed_records, 0, "snapshot subsumed the WAL");
    let server = Server::new(db.session());
    let (connector, listener) = pipe_listener();
    with_server(&server, listener, || {
        let mut probe = Client::over(connector.connect().unwrap());
        let version = probe
            .append_row_with_token("Items", row(), Some(TOKEN))
            .expect("retry across snapshot+restart is deduplicated");
        assert_eq!(version, applied_version);
        assert_eq!(db.table("Items").unwrap().num_rows(), 31, "no duplicate");
        assert_eq!(server.deduped_mutations(), 1);
    });
    assert_eq!(server.handler_panics(), 0);
}
