#![warn(missing_docs)]

//! # paq-chaos — seeded, deterministic fault injection
//!
//! Robustness claims are only worth what exercises them. This crate
//! injects failures into the I/O seams the workspace already has —
//! the store's WAL/snapshot file operations (via
//! [`paq_store::FaultInjector`]) and the server/client byte streams
//! (via [`ChaosStream`] wrapping any `Read + Write`) — from a single
//! seeded [`FaultPlan`], so every failure schedule is reproducible
//! from its seed and assertable in CI.
//!
//! * [`FaultPlan`] — a shared, thread-safe schedule: per-**site**
//!   (a string like `"wal.sync"` or `"client.write"`) trigger lists
//!   ([`Trigger`]: fail-nth, fail-every-k, delay, short-write,
//!   probabilistic) plus call/injection counters for reporting.
//! * [`ChaosStream`] — wraps any byte stream and consults the plan on
//!   every read/write: injected failures sever the stream exactly the
//!   way a broken TCP connection would (`ConnectionReset` now,
//!   `BrokenPipe` after), short writes deliver a torn frame to the
//!   peer, delays model a stalling network.
//! * [`ChaosAcceptor`] — wraps a server [`Acceptor`] so every accepted
//!   connection is chaos-wrapped; the production server code runs
//!   unchanged.
//!
//! Production binaries never depend on this crate: the store's seam is
//! an `Option<Arc<dyn FaultInjector>>` that is `None` outside tests,
//! and the generic stream/acceptor abstractions mean the chaos
//! wrappers are just another transport.
//!
//! [`Acceptor`]: paq_server::Acceptor

mod plan;
mod stream;

pub use plan::{sites, FaultPlan, Injection, SiteReport, Trigger, Verdict};
pub use stream::{ChaosAcceptor, ChaosStream};
