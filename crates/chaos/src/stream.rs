//! Chaos wrappers for byte streams and server acceptors.

use std::io::{self, Read, Write};
use std::time::Duration;

use paq_server::{Accepted, Acceptor, Connection};

use crate::plan::{FaultPlan, Injection};

/// A `Read + Write` wrapper that consults a [`FaultPlan`] on every
/// operation, modelling a flaky network link.
///
/// For a stream built with label `L`, reads consult site `"L.read"`
/// and writes consult site `"L.write"`. Faults behave like a real
/// connection dying:
///
/// * An injected **Fail** returns `ConnectionReset` and severs the
///   stream — every later operation returns `BrokenPipe`.
/// * An injected **ShortWrite** first delivers half the buffer to the
///   peer (so the other side observes a genuinely torn frame), then
///   severs the stream.
/// * A **Delay** sleeps before the operation proceeds, modelling a
///   stalling link (a slowloris peer, from the server's perspective).
///
/// With an empty plan the wrapper is a passthrough.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    plan: FaultPlan,
    read_site: String,
    write_site: String,
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner`, consulting `plan` at `"{label}.read"` and
    /// `"{label}.write"`.
    pub fn new(inner: S, plan: &FaultPlan, label: &str) -> Self {
        ChaosStream {
            inner,
            plan: plan.clone(),
            read_site: format!("{label}.read"),
            write_site: format!("{label}.write"),
            dead: false,
        }
    }

    /// Whether an injected fault has severed this stream.
    pub fn is_severed(&self) -> bool {
        self.dead
    }

    /// Access the wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the chaos layer.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn severed_error() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: stream severed")
    }

    fn sever(&mut self, site: &str, call: u64) -> io::Error {
        self.dead = true;
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            FaultPlan::error_for(site, call).to_string(),
        )
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::severed_error());
        }
        let verdict = self.plan.evaluate(&self.read_site);
        if let Some(delay) = verdict.delay {
            std::thread::sleep(delay);
        }
        match verdict.injection {
            Injection::None => self.inner.read(buf),
            // A short "write" on the read side has nothing to deliver;
            // both injections just kill the connection.
            Injection::Fail | Injection::ShortWrite => {
                let site = self.read_site.clone();
                Err(self.sever(&site, verdict.call))
            }
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::severed_error());
        }
        let verdict = self.plan.evaluate(&self.write_site);
        if let Some(delay) = verdict.delay {
            std::thread::sleep(delay);
        }
        match verdict.injection {
            Injection::None => self.inner.write(buf),
            Injection::Fail => {
                let site = self.write_site.clone();
                Err(self.sever(&site, verdict.call))
            }
            Injection::ShortWrite => {
                // Deliver a torn prefix for real: the peer must observe
                // a partial frame, not a cleanly-missing one.
                let torn = buf.len() / 2;
                self.inner.write_all(&buf[..torn])?;
                self.inner.flush()?;
                let site = self.write_site.clone();
                Err(self.sever(&site, verdict.call))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::severed_error());
        }
        self.inner.flush()
    }
}

impl<S: Connection> Connection for ChaosStream<S> {
    fn set_read_poll(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_poll(timeout)
    }

    fn try_clone_writer(&self) -> io::Result<Self> {
        // A clone would dodge injection bookkeeping (two handles, one
        // plan cursor), so chaos streams refuse to split; the server
        // then refuses the v7 handshake and the legacy protocol — the
        // one the chaos suite exercises — is unaffected.
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "chaos streams cannot be split into reader and writer",
        ))
    }
}

/// An [`Acceptor`] wrapper: every accepted connection is wrapped in a
/// [`ChaosStream`] sharing one plan and label, so a server under test
/// sees faulty clients without any change to its serve loop.
#[derive(Debug)]
pub struct ChaosAcceptor<A> {
    inner: A,
    plan: FaultPlan,
    label: String,
}

impl<A> ChaosAcceptor<A> {
    /// Wrap `inner`; accepted connections consult `plan` at
    /// `"{label}.read"` / `"{label}.write"`.
    pub fn new(inner: A, plan: &FaultPlan, label: &str) -> Self {
        ChaosAcceptor {
            inner,
            plan: plan.clone(),
            label: label.to_string(),
        }
    }
}

impl<A: Acceptor> Acceptor for ChaosAcceptor<A> {
    type Conn = ChaosStream<A::Conn>;

    fn poll(&mut self, timeout: Duration) -> Accepted<Self::Conn> {
        match self.inner.poll(timeout) {
            Accepted::Conn(conn) => Accepted::Conn(ChaosStream::new(conn, &self.plan, &self.label)),
            Accepted::Idle => Accepted::Idle,
            Accepted::Closed => Accepted::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Trigger;

    #[test]
    fn passthrough_with_empty_plan() {
        let plan = FaultPlan::new(0);
        let mut s = ChaosStream::new(io::Cursor::new(Vec::new()), &plan, "t");
        s.write_all(b"hello").unwrap();
        s.flush().unwrap();
        assert!(!s.is_severed());
        assert_eq!(s.get_ref().get_ref(), b"hello");

        let mut r = ChaosStream::new(io::Cursor::new(b"world".to_vec()), &plan, "t");
        let mut buf = String::new();
        r.read_to_string(&mut buf).unwrap();
        assert_eq!(buf, "world");
    }

    #[test]
    fn injected_write_fail_severs_the_stream() {
        let plan = FaultPlan::new(0);
        plan.on("t.write", Trigger::FailNth(2));
        let mut s = ChaosStream::new(io::Cursor::new(Vec::new()), &plan, "t");
        s.write_all(b"ok").unwrap();
        let err = s.write(b"boom").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(err.to_string().contains("t.write"), "{err}");
        assert!(s.is_severed());
        // Everything after the sever is BrokenPipe.
        assert_eq!(s.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(s.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 1];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn short_write_delivers_a_torn_prefix() {
        let plan = FaultPlan::new(0);
        plan.on("t.write", Trigger::ShortWriteNth(1));
        let mut s = ChaosStream::new(io::Cursor::new(Vec::new()), &plan, "t");
        let err = s.write(b"abcdefgh").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(s.is_severed());
        assert_eq!(
            s.get_ref().get_ref(),
            b"abcd",
            "peer saw exactly half the frame"
        );
    }

    #[test]
    fn injected_read_fail_severs_the_stream() {
        let plan = FaultPlan::new(0);
        plan.on("t.read", Trigger::FailNth(1));
        let mut s = ChaosStream::new(io::Cursor::new(b"data".to_vec()), &plan, "t");
        let mut buf = [0u8; 4];
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(s.is_severed());
    }
}
