//! The fault schedule: per-site triggers, seeded randomness, counters.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use paq_obs::Registry;
use paq_store::{FaultDecision, FaultInjector, FaultSite};

/// Well-known site names used by the [`FaultInjector`] impl for the
/// store seam. Stream sites are chosen by the caller when constructing
/// a [`crate::ChaosStream`] (`"{label}.read"` / `"{label}.write"`).
pub mod sites {
    /// A WAL record write (`Store::append`).
    pub const WAL_WRITE: &str = "wal.write";
    /// A WAL fsync (`SyncPolicy::Always` append, or `Store::sync`).
    pub const WAL_SYNC: &str = "wal.sync";
    /// Writing the snapshot temp file body.
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// Fsyncing the snapshot temp file.
    pub const SNAPSHOT_SYNC: &str = "snapshot.sync";
    /// The atomic rename of the temp file over the snapshot.
    pub const SNAPSHOT_RENAME: &str = "snapshot.rename";
}

/// One rule attached to a site. Call numbers are 1-based: the first
/// operation at a site is call `1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fail exactly the `n`-th call at this site, then never again.
    FailNth(u64),
    /// Fail every `k`-th call (calls `k`, `2k`, `3k`, ...).
    FailEveryK(u64),
    /// Sleep for `delay` before every `k`-th call goes through.
    Delay {
        /// Fire on calls `every`, `2*every`, ... (`0` never fires).
        every: u64,
        /// How long to stall the operation.
        delay: Duration,
    },
    /// Turn exactly the `n`-th call into a short (torn) write. At
    /// non-write sites this is equivalent to [`Trigger::FailNth`].
    ShortWriteNth(u64),
    /// Fail each call independently with probability `p` (clamped to
    /// `[0, 1]`), drawn from this site's seeded RNG stream — so the
    /// schedule is still fully determined by the plan seed.
    FailWithProbability(f64),
}

/// What kind of injection [`FaultPlan::evaluate`] selected, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Let the operation proceed normally.
    None,
    /// Fail the operation with an injected error.
    Fail,
    /// Let roughly half the payload through, then fail.
    ShortWrite,
}

/// The outcome of consulting the plan for one call at one site.
#[derive(Debug, Clone, Copy)]
pub struct Verdict {
    /// 1-based call number at this site (after counting this call).
    pub call: u64,
    /// Stall to apply before acting, if a delay trigger fired.
    pub delay: Option<Duration>,
    /// The injection to apply, if any.
    pub injection: Injection,
}

impl Verdict {
    fn pass(call: u64) -> Self {
        Verdict {
            call,
            delay: None,
            injection: Injection::None,
        }
    }
}

/// Per-site counters, for reporting and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// The site name.
    pub site: String,
    /// Total calls evaluated at this site.
    pub calls: u64,
    /// How many of those calls had a fault injected.
    pub injected: u64,
    /// How many of those calls were delayed.
    pub delayed: u64,
}

#[derive(Debug)]
struct SiteState {
    triggers: Vec<Trigger>,
    rng: SmallRng,
    calls: u64,
    injected: u64,
    delayed: u64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    sites: Mutex<HashMap<String, SiteState>>,
    obs: Mutex<Registry>,
}

/// A shared, seeded schedule of faults, keyed by site name.
///
/// Cloning is cheap (`Arc`); all clones share the same trigger tables
/// and counters, so a plan handed to a store injector, a chaos stream,
/// and the test's assertions all observe one consistent schedule.
///
/// Determinism: every random draw comes from a per-site RNG seeded
/// from `plan seed XOR hash(site name)`, so each site's decision
/// stream depends only on the seed and that site's own call sequence —
/// never on how calls at *different* sites interleave across threads.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl FaultPlan {
    /// Create an empty plan. With no triggers registered, every site
    /// passes every call — a chaos-wrapped stream behaves identically
    /// to the bare one.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Arc::new(Inner {
                seed,
                sites: Mutex::new(HashMap::new()),
                obs: Mutex::new(Registry::disabled()),
            }),
        }
    }

    /// Mirror this plan's activity into a metrics registry: every
    /// evaluated call at a *tracked* site counts `chaos.calls`, every
    /// injection `chaos.faults_injected`, every stall `chaos.delays` —
    /// so a chaos run's injections surface through the same snapshot
    /// (`PackageDb::obs_registry`, the wire `Metrics` request) as the
    /// engine figures they perturb. Disabled by default.
    pub fn attach_registry(&self, registry: Registry) {
        *lock(&self.inner.obs) = registry;
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Attach a trigger to a site. Multiple triggers on one site all
    /// apply; if several fire on the same call, `Fail` beats
    /// `ShortWrite`, and a delay composes with either.
    pub fn on(&self, site: impl Into<String>, trigger: Trigger) -> &Self {
        let site = site.into();
        let mut sites = lock(&self.inner.sites);
        let seed = self.inner.seed;
        sites
            .entry(site)
            .or_insert_with_key(|name| SiteState {
                triggers: Vec::new(),
                rng: SmallRng::seed_from_u64(seed ^ fnv1a(name)),
                calls: 0,
                injected: 0,
                delayed: 0,
            })
            .triggers
            .push(trigger);
        self
    }

    /// Count one call at `site` and decide what happens to it.
    ///
    /// Sites with no registered triggers are not tracked and always
    /// pass, so instrumented hot paths stay cheap under an empty plan.
    pub fn evaluate(&self, site: &str) -> Verdict {
        let mut sites = lock(&self.inner.sites);
        let Some(state) = sites.get_mut(site) else {
            return Verdict::pass(0);
        };
        state.calls += 1;
        let call = state.calls;
        let mut verdict = Verdict::pass(call);
        for idx in 0..state.triggers.len() {
            match state.triggers[idx] {
                Trigger::FailNth(n) if call == n => verdict.injection = Injection::Fail,
                Trigger::FailEveryK(k) if k > 0 && call.is_multiple_of(k) => {
                    verdict.injection = Injection::Fail;
                }
                // Fail beats ShortWrite when both fire on one call.
                Trigger::ShortWriteNth(n) if call == n && verdict.injection == Injection::None => {
                    verdict.injection = Injection::ShortWrite;
                }
                Trigger::Delay { every, delay } if every > 0 && call.is_multiple_of(every) => {
                    verdict.delay = Some(delay);
                }
                Trigger::FailWithProbability(p) => {
                    // Draw unconditionally so the site's RNG stream
                    // advances once per call regardless of outcome.
                    let fire = state.rng.gen_bool(p.clamp(0.0, 1.0));
                    if fire && verdict.injection == Injection::None {
                        verdict.injection = Injection::Fail;
                    }
                }
                _ => {}
            }
        }
        if verdict.injection != Injection::None {
            state.injected += 1;
        }
        if verdict.delay.is_some() {
            state.delayed += 1;
        }
        drop(sites);
        let obs = lock(&self.inner.obs).clone();
        obs.incr("chaos.calls");
        if verdict.injection != Injection::None {
            obs.incr("chaos.faults_injected");
        }
        if verdict.delay.is_some() {
            obs.incr("chaos.delays");
        }
        verdict
    }

    /// Total faults injected across all sites so far.
    pub fn injected(&self) -> u64 {
        lock(&self.inner.sites).values().map(|s| s.injected).sum()
    }

    /// Total calls evaluated across all sites so far.
    pub fn calls(&self) -> u64 {
        lock(&self.inner.sites).values().map(|s| s.calls).sum()
    }

    /// Per-site counters, sorted by site name for stable output.
    pub fn report(&self) -> Vec<SiteReport> {
        let sites = lock(&self.inner.sites);
        let mut out: Vec<SiteReport> = sites
            .iter()
            .map(|(name, s)| SiteReport {
                site: name.clone(),
                calls: s.calls,
                injected: s.injected,
                delayed: s.delayed,
            })
            .collect();
        out.sort_by(|a, b| a.site.cmp(&b.site));
        out
    }

    /// The error used for every injected failure: `io::ErrorKind::Other`
    /// with a message naming the site and call number, so a surfaced
    /// fault can be traced back to the trigger that produced it.
    pub fn error_for(site: &str, call: u64) -> io::Error {
        io::Error::other(format!("chaos: injected fault at {site} (call #{call})"))
    }
}

impl FaultInjector for FaultPlan {
    fn decide(&self, site: FaultSite, len: usize) -> FaultDecision {
        let name = store_site_name(site);
        let verdict = self.evaluate(name);
        if let Some(delay) = verdict.delay {
            std::thread::sleep(delay);
        }
        match verdict.injection {
            Injection::None => FaultDecision::Pass,
            Injection::Fail => FaultDecision::Fail(FaultPlan::error_for(name, verdict.call)),
            Injection::ShortWrite => FaultDecision::ShortWrite {
                len: len / 2,
                error: FaultPlan::error_for(name, verdict.call),
            },
        }
    }
}

fn store_site_name(site: FaultSite) -> &'static str {
    match site {
        FaultSite::WalWrite => sites::WAL_WRITE,
        FaultSite::WalSync => sites::WAL_SYNC,
        FaultSite::SnapshotWrite => sites::SNAPSHOT_WRITE,
        FaultSite::SnapshotSync => sites::SNAPSHOT_SYNC,
        FaultSite::SnapshotRename => sites::SNAPSHOT_RENAME,
    }
}

/// FNV-1a over the site name: a tiny, dependency-free way to give each
/// site its own deterministic RNG stream from one plan seed.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_passes_everything() {
        let plan = FaultPlan::new(7);
        for _ in 0..100 {
            let v = plan.evaluate("anything");
            assert!(v.delay.is_none());
            assert_eq!(v.injection, Injection::None);
        }
        assert_eq!(plan.injected(), 0);
        // Untracked sites don't accumulate state.
        assert_eq!(plan.calls(), 0);
        assert!(plan.report().is_empty());
    }

    #[test]
    fn fail_nth_fires_exactly_once() {
        let plan = FaultPlan::new(1);
        plan.on("s", Trigger::FailNth(3));
        let hits: Vec<bool> = (0..6)
            .map(|_| plan.evaluate("s").injection == Injection::Fail)
            .collect();
        assert_eq!(hits, vec![false, false, true, false, false, false]);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn fail_every_k_is_periodic() {
        let plan = FaultPlan::new(1);
        plan.on("s", Trigger::FailEveryK(2));
        let hits: Vec<bool> = (0..6)
            .map(|_| plan.evaluate("s").injection == Injection::Fail)
            .collect();
        assert_eq!(hits, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn delay_composes_with_fail() {
        let plan = FaultPlan::new(1);
        plan.on(
            "s",
            Trigger::Delay {
                every: 2,
                delay: Duration::from_millis(1),
            },
        );
        plan.on("s", Trigger::FailNth(2));
        let first = plan.evaluate("s");
        assert!(first.delay.is_none());
        assert_eq!(first.injection, Injection::None);
        let second = plan.evaluate("s");
        assert_eq!(second.delay, Some(Duration::from_millis(1)));
        assert_eq!(second.injection, Injection::Fail);
        let report = plan.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].calls, 2);
        assert_eq!(report[0].injected, 1);
        assert_eq!(report[0].delayed, 1);
    }

    #[test]
    fn probabilistic_stream_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed);
            plan.on("p", Trigger::FailWithProbability(0.5));
            (0..32)
                .map(|_| plan.evaluate("p").injection == Injection::Fail)
                .collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same schedule");
        assert_ne!(draw(42), draw(43), "different seed, different schedule");
    }

    #[test]
    fn per_site_streams_are_independent_of_interleaving() {
        // Evaluate two probabilistic sites interleaved vs. sequentially:
        // each site's decision stream must come out identical.
        let run = |interleave: bool| -> (Vec<bool>, Vec<bool>) {
            let plan = FaultPlan::new(99);
            plan.on("a", Trigger::FailWithProbability(0.5));
            plan.on("b", Trigger::FailWithProbability(0.5));
            let mut a = Vec::new();
            let mut b = Vec::new();
            if interleave {
                for _ in 0..16 {
                    a.push(plan.evaluate("a").injection == Injection::Fail);
                    b.push(plan.evaluate("b").injection == Injection::Fail);
                }
            } else {
                for _ in 0..16 {
                    a.push(plan.evaluate("a").injection == Injection::Fail);
                }
                for _ in 0..16 {
                    b.push(plan.evaluate("b").injection == Injection::Fail);
                }
            }
            (a, b)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn store_injector_maps_sites_and_halves_short_writes() {
        let plan = FaultPlan::new(5);
        plan.on(sites::WAL_WRITE, Trigger::ShortWriteNth(1));
        plan.on(sites::WAL_SYNC, Trigger::FailNth(1));
        match plan.decide(FaultSite::WalWrite, 10) {
            FaultDecision::ShortWrite { len, error } => {
                assert_eq!(len, 5);
                assert!(error.to_string().contains("wal.write"));
            }
            other => panic!("expected short write, got {other:?}"),
        }
        match plan.decide(FaultSite::WalSync, 0) {
            FaultDecision::Fail(e) => assert!(e.to_string().contains("wal.sync")),
            other => panic!("expected fail, got {other:?}"),
        }
        assert!(matches!(
            plan.decide(FaultSite::SnapshotRename, 0),
            FaultDecision::Pass
        ));
        assert_eq!(plan.injected(), 2);
    }
}
