//! Property coverage for the histogram: quantile ordering on arbitrary
//! fills, exact values on synthetic fills, and merge associativity.

use paq_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn fill(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn exact_quantiles_on_power_of_two_fill() {
    // 8 values, one per bucket 1..=8: ranks map 1:1 onto buckets.
    let values: Vec<u64> = (0..8u32).map(|i| 1u64 << i).collect();
    let s = fill(&values);
    assert_eq!(s.count, 8);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, 128);
    // p50 → rank 4 → bucket 4 (value 8), upper bound 15.
    assert_eq!(s.p50(), Some(15));
    // p90 → rank 8 → bucket 8 (value 128), upper bound 255 clamps to max.
    assert_eq!(s.p90(), Some(128));
    assert_eq!(s.p99(), Some(128));
}

#[test]
fn bucket_bounds_partition_the_u64_range() {
    let mut next = 0u64;
    for i in 0..paq_obs::histogram::BUCKET_COUNT {
        assert_eq!(
            bucket_lower(i),
            next,
            "bucket {i} starts where {} ended",
            i.wrapping_sub(1)
        );
        assert!(bucket_lower(i) <= bucket_upper(i));
        next = bucket_upper(i).wrapping_add(1);
    }
    assert_eq!(next, 0, "bucket 64 ends at u64::MAX");
}

proptest! {
    #[test]
    fn quantiles_are_ordered_and_in_range(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let s = fill(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        let p50 = s.p50().unwrap();
        let p90 = s.p90().unwrap();
        let p99 = s.p99().unwrap();
        prop_assert!(min <= p50, "min {} ≤ p50 {}", min, p50);
        prop_assert!(p50 <= p90, "p50 {} ≤ p90 {}", p50, p90);
        prop_assert!(p90 <= p99, "p90 {} ≤ p99 {}", p90, p99);
        prop_assert!(p99 <= max, "p99 {} ≤ max {}", p99, max);
    }

    #[test]
    fn recorded_values_land_in_their_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        let s = fill(&[v]);
        prop_assert_eq!(s.buckets, vec![(i as u8, 1u64)]);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..50),
        b in prop::collection::vec(0u64..1_000_000, 0..50),
        c in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let (sa, sb, sc) = (fill(&a), fill(&b), fill(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right, "associativity");

        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "commutativity");

        // And the merge equals one histogram fed everything.
        let mut everything = a.clone();
        everything.extend_from_slice(&b);
        everything.extend_from_slice(&c);
        prop_assert_eq!(&left, &fill(&everything), "merge ≡ single fill");
    }
}
