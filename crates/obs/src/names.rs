//! Well-known metric names shared across crates.
//!
//! The registry keys on `&'static str`, so any crate *could* invent
//! names ad hoc — and the engine-internal ones are established by their
//! call sites. The serving-layer names below are shared between the
//! server (which records them) and the bench/CI tooling (which asserts
//! on them), so they live here once instead of as string literals that
//! can drift apart.

/// Counter: protocol-v7 handshakes completed (HelloAck sent), including
/// ones negotiated down to a legacy version.
pub const SERVER_HANDSHAKES: &str = "server.handshakes";

/// Counter: pipelined (v7) request frames handed to the fair scheduler
/// (shed arrivals included; see [`SERVER_SHED`] for those).
pub const SERVER_PIPELINED: &str = "server.pipelined_requests";

/// Counter: pipelined requests shed by admission control (quota
/// exceeded, queue saturated, or evicted for higher-priority work);
/// each was answered with a typed `Busy` carrying its shed class.
pub const SERVER_SHED: &str = "server.admission.shed";

/// Counter: shed requests whose admission class was interactive.
pub const SERVER_SHED_INTERACTIVE: &str = "server.admission.shed.interactive";

/// Counter: shed requests whose admission class was normal.
pub const SERVER_SHED_NORMAL: &str = "server.admission.shed.normal";

/// Counter: shed requests whose admission class was bulk.
pub const SERVER_SHED_BULK: &str = "server.admission.shed.bulk";

/// Histogram: time an admitted pipelined request waited in the fair
/// scheduler between admission and the start of execution.
pub const SERVER_FAIR_QUEUE_WAIT: &str = "server.fair.queue_wait";

/// Counter: connections closed for never starting a frame within the
/// server's idle timeout.
pub const SERVER_IDLE_CLOSED: &str = "server.idle_closed";
