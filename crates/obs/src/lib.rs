//! `paq-obs`: the observability substrate for the package-query
//! engine — a zero-dependency metrics registry, log-bucketed latency
//! histograms with percentile extraction, nested tracing spans, and a
//! Prometheus-style text exposition.
//!
//! The design constraints come from the engine it instruments:
//!
//! * **hot paths stay hot** — recording a metric is a read-lock plus
//!   relaxed atomics, and a [`Registry::disabled`] handle reduces every
//!   call to one branch (proven by the bench guard in
//!   `BENCH_refine.json`'s `observability.obs_off_warm_min_roundtrip_ms`);
//! * **determinism is untouched** — span capture is passive (nothing
//!   reads a trace during evaluation), so packages stay bit-identical
//!   at any `PAQ_THREADS` with obs enabled (swept in CI);
//! * **everything exports** — [`Registry::snapshot`] is an owned value
//!   that crosses the wire (`Metrics` request, protocol v6) and renders
//!   as [`prometheus`] text that parses back losslessly.
//!
//! See the workspace README's "Observability" section for the span-site
//! table and the metric naming scheme.

#![warn(missing_docs)]

pub mod histogram;
pub mod names;
pub mod prometheus;
pub mod registry;
pub mod span;

pub use histogram::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot};
pub use registry::{Registry, RegistrySnapshot};
pub use span::{
    current_context, obs_scope, span, ObsContext, ObsScopeGuard, Span, SpanRecord, Trace,
    DEFAULT_TRACE_CAPACITY,
};
