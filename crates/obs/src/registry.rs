//! The metrics registry: named atomic counters, gauges, and latency
//! histograms behind a cheap cloneable handle.
//!
//! A [`Registry`] is either *enabled* (an `Arc` over the shared metric
//! tables) or *disabled* (`None` inside — every operation is a no-op
//! and costs one branch). The engine keeps an enabled registry on its
//! shared state by default; benches prove the disabled handle adds no
//! measurable overhead.
//!
//! Metric names are `&'static str` dotted paths (`server.handle`,
//! `db.cache.hit`) — the hot path never allocates: a recorded metric is
//! one `RwLock` read acquisition plus relaxed atomic ops, with the
//! write lock taken only the first time a name is seen.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crate::histogram::{Histogram, HistogramSnapshot};

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicI64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<Histogram>>>,
}

fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn intern<V: Default>(map: &RwLock<HashMap<&'static str, Arc<V>>>, name: &'static str) -> Arc<V> {
    if let Some(v) = read(map).get(name) {
        return Arc::clone(v);
    }
    Arc::clone(write(map).entry(name).or_default())
}

/// A cheap cloneable handle to a set of named metrics, or a no-op.
///
/// All clones of an enabled registry share the same metric tables, so a
/// handle can be stored once on shared state and handed to every
/// subsystem that records.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled registry with empty metric tables.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A disabled registry: every operation is a no-op, snapshots are
    /// empty. This is the `Default`.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the counter `name` (creating it at zero first).
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            intern(&inner.counters, name).fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment the counter `name` by one.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Set the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            intern(&inner.gauges, name).store(value, Ordering::Relaxed);
        }
    }

    /// Record `nanos` into the histogram `name`.
    pub fn observe_nanos(&self, name: &'static str, nanos: u64) {
        if let Some(inner) = &self.inner {
            intern(&inner.histograms, name).record(nanos);
        }
    }

    /// Record a [`Duration`] into the histogram `name`.
    pub fn observe(&self, name: &'static str, d: Duration) {
        if let Some(inner) = &self.inner {
            intern(&inner.histograms, name).record_duration(d);
        }
    }

    /// Time a closure into the histogram `name` (no timing overhead at
    /// all when disabled).
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if self.inner.is_none() {
            return f();
        }
        let started = Instant::now();
        let out = f();
        self.observe(name, started.elapsed());
        out
    }

    /// Current value of the counter `name` (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| {
                read(&inner.counters)
                    .get(name)
                    .map(|c| c.load(Ordering::Relaxed))
            })
            .unwrap_or(0)
    }

    /// Current value of the gauge `name` (`None` if absent or disabled).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.inner.as_ref().and_then(|inner| {
            read(&inner.gauges)
                .get(name)
                .map(|g| g.load(Ordering::Relaxed))
        })
    }

    /// Snapshot of the histogram `name` (`None` if absent or disabled).
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .as_ref()
            .and_then(|inner| read(&inner.histograms).get(name).map(|h| h.snapshot()))
    }

    /// Capture every metric as an owned snapshot, names sorted, ready
    /// for the wire or the exposition renderer. Empty when disabled.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let Some(inner) = &self.inner else {
            return RegistrySnapshot::default();
        };
        let mut counters: Vec<(String, u64)> = read(&inner.counters)
            .iter()
            .map(|(&name, c)| (name.to_owned(), c.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = read(&inner.gauges)
            .iter()
            .map(|(&name, g)| (name.to_owned(), g.load(Ordering::Relaxed)))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = read(&inner.histograms)
            .iter()
            .map(|(&name, h)| (name.to_owned(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// An owned point-in-time copy of a whole [`Registry`]: sorted name →
/// value lists. This is the payload of the wire `Metrics` reply and the
/// input to the Prometheus-style renderer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histograms, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let r = Registry::new();
        r.incr("a.calls");
        r.add("a.calls", 2);
        r.set_gauge("a.depth", -7);
        r.observe_nanos("a.latency", 100);
        r.observe_nanos("a.latency", 200);
        assert_eq!(r.counter("a.calls"), 3);
        assert_eq!(r.gauge("a.depth"), Some(-7));
        let h = r.histogram("a.latency").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 300);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.calls"), 3);
        assert!(snap.histogram("a.latency").is_some());
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let clone = r.clone();
        clone.incr("shared");
        assert_eq!(r.counter("shared"), 1);
    }

    #[test]
    fn disabled_registry_is_a_silent_no_op() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        r.incr("x");
        r.set_gauge("g", 1);
        r.observe_nanos("h", 5);
        assert_eq!(r.time("h", || 41 + 1), 42);
        assert_eq!(r.counter("x"), 0);
        assert_eq!(r.gauge("g"), None);
        assert!(r.histogram("h").is_none());
        assert_eq!(r.snapshot(), RegistrySnapshot::default());
    }

    #[test]
    fn snapshot_names_are_sorted() {
        let r = Registry::new();
        r.incr("z");
        r.incr("a");
        r.incr("m");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }
}
