//! Prometheus-style text exposition for a [`RegistrySnapshot`]:
//! [`render`] produces the classic `# TYPE` / sample-line format, and
//! [`parse`] reads it back — the CI round-trip check that the export is
//! actually machine-readable, not write-only.
//!
//! Mapping choices:
//!
//! * metric names are sanitized (`.` and `-` become `_`) and prefixed
//!   with `paq_`, so `server.queue_wait` exports as
//!   `paq_server_queue_wait`;
//! * histograms use the standard cumulative `_bucket{le="…"}` /
//!   `_sum` / `_count` triple with nanosecond `le` bounds (one per
//!   occupied log2 bucket, plus `+Inf`), and additionally emit exact
//!   `_min` / `_max` gauges so the clamped quantiles survive the trip;
//! * [`parse`] returns a [`RegistrySnapshot`] whose names are the
//!   sanitized ones. `parse(render(s))` preserves every value, and
//!   `render(parse(render(s))) == render(s)` exactly.

use crate::histogram::{bucket_index, HistogramSnapshot};
use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;

/// `server.queue_wait` → `paq_server_queue_wait`. Idempotent: a name
/// already carrying the `paq_` prefix (e.g. one produced by [`parse`])
/// is not double-prefixed, so render → parse → render is a fixpoint.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    if !name.starts_with("paq_") {
        out.push_str("paq_");
    }
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render `snapshot` in Prometheus text exposition format.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(index, count) in &h.buckets {
            cumulative = cumulative.saturating_add(count);
            let le = crate::histogram::bucket_upper(index as usize);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        let _ = writeln!(out, "{name}_min {}", h.min);
        let _ = writeln!(out, "{name}_max {}", h.max);
    }
    out
}

/// Parse text produced by [`render`] back into a snapshot (names come
/// back sanitized). Unknown or malformed lines are errors — the CI
/// round-trip must fail loudly if the exposition drifts.
pub fn parse(text: &str) -> Result<RegistrySnapshot, String> {
    let mut snapshot = RegistrySnapshot::default();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            return Err(format!("expected a # TYPE line, got {line:?}"));
        };
        let (name, kind) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed TYPE line {line:?}"))?;
        match kind {
            "counter" => {
                let value = sample(lines.next(), name)?;
                snapshot.counters.push((
                    name.to_owned(),
                    value
                        .parse()
                        .map_err(|e| format!("counter {name}: bad value ({e})"))?,
                ));
            }
            "gauge" => {
                let value = sample(lines.next(), name)?;
                snapshot.gauges.push((
                    name.to_owned(),
                    value
                        .parse()
                        .map_err(|e| format!("gauge {name}: bad value ({e})"))?,
                ));
            }
            "histogram" => {
                let h = parse_histogram(name, &mut lines)?;
                snapshot.histograms.push((name.to_owned(), h));
            }
            other => return Err(format!("unknown metric type {other:?}")),
        }
    }
    Ok(snapshot)
}

/// Extract the value of a `name value` sample line.
fn sample<'l>(line: Option<&'l str>, name: &str) -> Result<&'l str, String> {
    let line = line
        .ok_or_else(|| format!("missing sample line for {name}"))?
        .trim();
    let (sample_name, value) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed sample line {line:?}"))?;
    if sample_name != name {
        return Err(format!("expected sample for {name}, got {sample_name}"));
    }
    Ok(value)
}

fn parse_u64(text: &str, what: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|e| format!("{what}: bad number {text:?} ({e})"))
}

fn parse_histogram(
    name: &str,
    lines: &mut std::iter::Peekable<std::str::Lines<'_>>,
) -> Result<HistogramSnapshot, String> {
    let mut h = HistogramSnapshot::default();
    let mut cumulative = 0u64;
    let bucket_prefix = format!("{name}_bucket{{le=\"");
    // Cumulative bucket lines, ending with +Inf.
    loop {
        let line = lines
            .next()
            .ok_or_else(|| format!("histogram {name}: truncated buckets"))?
            .trim();
        let Some(rest) = line.strip_prefix(&bucket_prefix) else {
            return Err(format!(
                "histogram {name}: expected bucket line, got {line:?}"
            ));
        };
        let (le, count) = rest
            .split_once("\"} ")
            .ok_or_else(|| format!("histogram {name}: malformed bucket {line:?}"))?;
        let total = parse_u64(count, name)?;
        if le == "+Inf" {
            break;
        }
        let upper = parse_u64(le, name)?;
        let in_bucket = total
            .checked_sub(cumulative)
            .ok_or_else(|| format!("histogram {name}: non-monotone buckets"))?;
        if in_bucket > 0 {
            h.buckets.push((bucket_index(upper) as u8, in_bucket));
        }
        cumulative = total;
    }
    h.sum = parse_u64(sample(lines.next(), &format!("{name}_sum"))?, name)?;
    h.count = parse_u64(sample(lines.next(), &format!("{name}_count"))?, name)?;
    h.min = parse_u64(sample(lines.next(), &format!("{name}_min"))?, name)?;
    h.max = parse_u64(sample(lines.next(), &format!("{name}_max"))?, name)?;
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> RegistrySnapshot {
        let r = Registry::new();
        r.add("server.requests", 12);
        r.incr("db.cache.hit");
        r.set_gauge("db.tables", 3);
        for v in [150u64, 900, 2_000, 2_500, 70_000] {
            r.observe_nanos("server.handle", v);
        }
        r.observe_nanos("refine.wave", 0);
        r.snapshot()
    }

    #[test]
    fn render_parse_round_trip_preserves_values() {
        let snapshot = sample_snapshot();
        let text = render(&snapshot);
        let parsed = parse(&text).expect("exposition parses back");
        assert_eq!(parsed.counter("paq_server_requests"), 12);
        assert_eq!(parsed.counter("paq_db_cache_hit"), 1);
        assert_eq!(parsed.gauges, vec![("paq_db_tables".to_owned(), 3)]);
        let original = snapshot.histogram("server.handle").unwrap();
        let roundtripped = parsed.histogram("paq_server_handle").unwrap();
        assert_eq!(roundtripped, original);
        assert_eq!(roundtripped.p99(), original.p99());
        // A second trip is the identity on the text itself.
        assert_eq!(render(&parsed), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not an exposition").is_err());
        assert!(parse("# TYPE x counter\ny 1").is_err());
        assert!(parse("# TYPE x histogram\nx_sum 1").is_err());
    }

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize("server.queue_wait"), "paq_server_queue_wait");
        assert_eq!(sanitize("a-b.c"), "paq_a_b_c");
    }
}
