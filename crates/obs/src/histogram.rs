//! Log-bucketed latency histograms with lock-free recording and
//! snapshot-on-read quantile extraction.
//!
//! Values are nanoseconds. Bucket `0` holds the value `0`; bucket `i`
//! (for `i ≥ 1`) covers `[2^(i-1), 2^i)` — i.e. a value lands in the
//! bucket indexed by its bit length. With 65 buckets the full `u64`
//! range is covered, so recording can never clip.
//!
//! Quantiles are extracted from a [`HistogramSnapshot`] by walking the
//! cumulative bucket counts and reporting the chosen bucket's upper
//! bound, clamped into the exactly-tracked `[min, max]` range. The
//! clamping gives the invariant `min ≤ p50 ≤ p90 ≤ p99 ≤ max` for any
//! fill (property-tested in `tests/histogram_props.rs`).
//!
//! Snapshots merge by bucket-wise saturating addition, which is
//! associative and commutative — per-shard histograms can be folded in
//! any order and produce the same aggregate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one for zero plus one per `u64` bit length.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a nanosecond value lands in: its bit length.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    (u64::BITS - nanos.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `index` (0 for the zero bucket).
pub fn bucket_lower(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `index`.
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A lock-free log-bucketed histogram of nanosecond durations.
///
/// `record` is a handful of relaxed atomic RMW ops — cheap enough for
/// hot paths. Reads go through [`Histogram::snapshot`]; a snapshot
/// taken concurrently with writers is internally consistent per field
/// but may lag in-flight records by design.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    /// `0` while empty.
    max: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one nanosecond observation.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`Duration`] observation (clamped to `u64` nanoseconds).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Capture the current contents as an owned, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned point-in-time copy of a [`Histogram`]: sparse buckets plus
/// exact count/sum/min/max. This is what crosses the wire and what
/// quantiles are computed from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded nanosecond values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (`0` while empty).
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Total observations according to the buckets themselves (the
    /// basis for quantile ranks, so a snapshot is self-consistent even
    /// if `count` raced ahead of a bucket increment).
    pub fn total(&self) -> u64 {
        self.buckets
            .iter()
            .map(|&(_, n)| n)
            .fold(0, u64::saturating_add)
    }

    /// Mean of the recorded values in nanoseconds, `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in nanoseconds, `None` while
    /// empty. Resolution is one log2 bucket: the reported value is the
    /// chosen bucket's upper bound clamped into `[min, max]`, so
    /// quantiles are monotone in `q` and always within the observed
    /// range.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return Some(bucket_upper(index as usize).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`: bucket-wise saturating addition, with
    /// min/max widened. Associative and commutative, so shard snapshots
    /// can be merged in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut dense = [0u64; BUCKET_COUNT];
        for &(i, n) in self.buckets.iter().chain(other.buckets.iter()) {
            let slot = &mut dense[i as usize];
            *slot = slot.saturating_add(n);
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| (n > 0).then_some((i as u8, n)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
        }
    }

    #[test]
    fn quantiles_on_a_synthetic_fill_are_exact() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // Rank 50 falls in bucket 6 (values 32..=63): cumulative counts
        // through bucket 6 are 1+2+4+8+16+32 = 63 ≥ 50. Upper bound 63.
        assert_eq!(s.p50(), Some(63));
        // Rank 90 and 99 fall in bucket 7 (64..=127); its upper bound
        // 127 clamps to the recorded max.
        assert_eq!(s.p90(), Some(100));
        assert_eq!(s.p99(), Some(100));
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(100));
    }

    #[test]
    fn single_value_fill_reports_that_value_everywhere() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(42);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(42));
        }
        assert_eq!(s.mean(), Some(42.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn merge_equals_single_histogram_fill() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 5, 900, 1024, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 3, 64, 5_000_000] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
