//! Timed tracing spans with parent/child nesting, recorded into a
//! bounded per-request [`Trace`] and fed into registry histograms on
//! drop.
//!
//! The engine's evaluators sit behind trait objects whose signatures
//! must not grow an observability parameter, so the ambient context
//! travels in a thread-local (the same scoped-guard pattern as
//! `paq_core::catalog_scope`): the request owner installs an
//! [`ObsContext`] with [`obs_scope`], and any code below it opens spans
//! with [`span`]. With no context installed, [`span`] returns an inert
//! guard that does nothing — not even read the clock.
//!
//! Span capture is deliberately *passive*: nothing in the engine reads
//! the trace while executing, so tracing cannot perturb the
//! bit-identical determinism guarantees (CI sweeps `PAQ_THREADS` 1
//! vs 4 with obs enabled). Spans opened on pool worker threads land in
//! that worker's context, if any; the engine therefore records
//! wave-level spans on the coordinating thread, where ordering is
//! deterministic.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::registry::Registry;

/// Default cap on recorded spans per trace (outliers beyond it are
/// counted, not stored).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// One completed (or still-open) span inside a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's site name, e.g. `refine.wave`.
    pub name: &'static str,
    /// Nesting depth at open time (0 = root).
    pub depth: u16,
    /// Offset from the trace epoch when the span opened.
    pub start: Duration,
    /// Wall time between open and drop (zero while still open).
    pub elapsed: Duration,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    /// Spans discarded after the capacity was reached.
    dropped: u64,
}

/// A bounded, append-only record of the spans opened during one
/// request. Rendered by `Execution::explain()` as a timing tree and by
/// the slow-query log.
#[derive(Debug)]
pub struct Trace {
    epoch: Instant,
    capacity: usize,
    state: Mutex<TraceState>,
}

fn lock(state: &Mutex<TraceState>) -> MutexGuard<'_, TraceState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Trace {
    /// An empty trace holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Trace {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(TraceState::default()),
        }
    }

    /// Open a span; returns its record index, or `None` if the trace is
    /// full (the drop is counted).
    fn begin(&self, name: &'static str) -> Option<usize> {
        let mut state = lock(&self.state);
        if state.spans.len() >= self.capacity {
            state.dropped += 1;
            return None;
        }
        let index = state.spans.len();
        let depth = state.stack.len() as u16;
        let start = self.epoch.elapsed();
        state.spans.push(SpanRecord {
            name,
            depth,
            start,
            elapsed: Duration::ZERO,
        });
        state.stack.push(index);
        Some(index)
    }

    /// Close the span at `index` with its measured duration.
    fn end(&self, index: usize, elapsed: Duration) {
        let mut state = lock(&self.state);
        if let Some(record) = state.spans.get_mut(index) {
            record.elapsed = elapsed;
        }
        state.stack.retain(|&i| i != index);
    }

    /// The recorded spans, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock(&self.state).spans.clone()
    }

    /// Spans discarded because the trace was full.
    pub fn dropped(&self) -> u64 {
        lock(&self.state).dropped
    }

    /// Render the spans as an indented timing tree, one line per span:
    ///
    /// ```text
    /// execute                        12.345 ms
    ///   plan                          0.021 ms
    ///   evaluate.sketchrefine        11.809 ms
    ///     sketch                      1.400 ms
    ///     refine.wave                 5.100 ms
    /// ```
    pub fn render(&self) -> String {
        let state = lock(&self.state);
        let mut out = String::new();
        let name_width = state
            .spans
            .iter()
            .map(|s| s.name.len() + 2 * s.depth as usize)
            .max()
            .unwrap_or(0)
            .max(8);
        for record in &state.spans {
            let indent = 2 * record.depth as usize;
            let _ = writeln!(
                out,
                "{:indent$}{:<width$} {:>10.3} ms",
                "",
                record.name,
                record.elapsed.as_secs_f64() * 1e3,
                indent = indent,
                width = name_width - indent,
            );
        }
        if state.dropped > 0 {
            let _ = writeln!(out, "({} spans dropped at capacity)", state.dropped);
        }
        out
    }
}

/// The ambient observability context: where spans opened on this thread
/// record to.
#[derive(Debug, Clone, Default)]
pub struct ObsContext {
    /// Histogram sink for span durations (may be disabled).
    pub registry: Registry,
    /// Per-request trace, when one is being captured.
    pub trace: Option<Arc<Trace>>,
}

impl ObsContext {
    fn is_active(&self) -> bool {
        self.registry.is_enabled() || self.trace.is_some()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ObsContext>> = const { RefCell::new(None) };
}

/// Install `context` as this thread's ambient [`ObsContext`] until the
/// returned guard drops (the previous context, if any, is restored —
/// scopes nest).
pub fn obs_scope(context: ObsContext) -> ObsScopeGuard {
    let previous = CURRENT.with(|cell| cell.replace(Some(context)));
    ObsScopeGuard { previous }
}

/// The ambient context installed on this thread, if any.
pub fn current_context() -> Option<ObsContext> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Restores the previously-installed context on drop.
#[derive(Debug)]
pub struct ObsScopeGuard {
    previous: Option<ObsContext>,
}

impl Drop for ObsScopeGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|cell| *cell.borrow_mut() = previous);
    }
}

/// Open a timed span named `name` against this thread's ambient
/// context. Inert (no clock read) when no context is installed.
pub fn span(name: &'static str) -> Span {
    match current_context() {
        Some(ctx) if ctx.is_active() => Span::enter_with(name, ctx.registry, ctx.trace),
        _ => Span::noop(),
    }
}

/// An RAII timed scope: on drop it records its wall time into the
/// trace (if capturing) and into the registry histogram of the same
/// name (if enabled).
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    started: Instant,
    registry: Registry,
    trace: Option<(Arc<Trace>, Option<usize>)>,
}

impl Span {
    /// A span that measures nothing.
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// Open a span against explicit sinks, bypassing the thread-local
    /// context (used by the request owner itself).
    pub fn enter_with(name: &'static str, registry: Registry, trace: Option<Arc<Trace>>) -> Span {
        if !registry.is_enabled() && trace.is_none() {
            return Span::noop();
        }
        let trace = trace.map(|t| {
            let index = t.begin(name);
            (t, index)
        });
        Span {
            inner: Some(SpanInner {
                name,
                started: Instant::now(),
                registry,
                trace,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.started.elapsed();
        if let Some((trace, Some(index))) = &inner.trace {
            trace.end(*index, elapsed);
        }
        inner.registry.observe(inner.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_into_trace_and_registry() {
        let registry = Registry::new();
        let trace = Arc::new(Trace::new(16));
        let _scope = obs_scope(ObsContext {
            registry: registry.clone(),
            trace: Some(Arc::clone(&trace)),
        });
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert!(spans[1].start >= spans[0].start);
        assert_eq!(registry.histogram("outer").unwrap().count, 1);
        assert_eq!(registry.histogram("inner").unwrap().count, 1);
        let tree = trace.render();
        assert!(tree.contains("outer"), "{tree}");
        assert!(tree.contains("  inner"), "{tree}");
    }

    #[test]
    fn no_context_means_inert_spans() {
        assert!(current_context().is_none());
        let _span = span("anything");
        // Nothing to assert beyond "does not panic": there is no sink.
    }

    #[test]
    fn scopes_restore_the_previous_context() {
        let outer_registry = Registry::new();
        let guard = obs_scope(ObsContext {
            registry: outer_registry.clone(),
            trace: None,
        });
        {
            let inner_registry = Registry::new();
            let _inner = obs_scope(ObsContext {
                registry: inner_registry.clone(),
                trace: None,
            });
            drop(span("x"));
            assert_eq!(inner_registry.histogram("x").unwrap().count, 1);
            assert!(outer_registry.histogram("x").is_none());
        }
        drop(span("y"));
        assert_eq!(outer_registry.histogram("y").unwrap().count, 1);
        drop(guard);
        assert!(current_context().is_none());
    }

    #[test]
    fn trace_capacity_bounds_recording() {
        let trace = Arc::new(Trace::new(2));
        for _ in 0..5 {
            let _span = Span::enter_with("s", Registry::disabled(), Some(Arc::clone(&trace)));
        }
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.dropped(), 3);
        assert!(trace.render().contains("3 spans dropped"));
    }
}
