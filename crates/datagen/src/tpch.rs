//! Synthetic pre-joined TPC-H table.
//!
//! The paper joins the TPC-H relations with *full outer joins* into one
//! wide table of ≈17.5M rows; each package query then runs on the
//! subset of rows with non-NULL values on its attributes, giving each
//! query a different effective table size (paper Fig. 3: 6M for most
//! queries, 240k for Q5, 11.8M for Q6).
//!
//! We reproduce that structure with *attribute families* that are
//! present or NULL per row:
//!
//! | family | attributes | presence |
//! |--------|------------|----------|
//! | lineitem  | `quantity`, `extendedprice`, `discount`, `tax` | ≈ 34% |
//! | partsupp  | `availqty`, `supplycost` | ≈ 67% |
//! | part      | `retailprice`, `size` | ≈ 34% (⊂ rows with lineitem) |
//! | customer  | `acctbal`, `ordertotal` | ≈ 1.4% |
//!
//! so the per-query non-NULL sizes scale like the paper's: queries over
//! lineitem attributes see ≈34% of rows, the partsupp query ≈67%, and
//! the customer query ≈1.4%.

use paq_relational::{DataType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Numeric attributes of the pre-joined table, in schema order.
pub const TPCH_ATTRIBUTES: [&str; 10] = [
    "quantity",
    "extendedprice",
    "discount",
    "tax",
    "availqty",
    "supplycost",
    "retailprice",
    "size",
    "acctbal",
    "ordertotal",
];

/// Presence probability of the lineitem family (≈ 6M / 17.5M).
pub const P_LINEITEM: f64 = 0.34;
/// Presence probability of the partsupp family (≈ 11.8M / 17.5M).
pub const P_PARTSUPP: f64 = 0.67;
/// Presence probability of the customer family (≈ 240k / 17.5M).
pub const P_CUSTOMER: f64 = 0.014;

/// Schema of the synthetic pre-joined TPC-H table.
pub fn tpch_schema() -> Schema {
    let mut cols = vec![("rowid", DataType::Int)];
    cols.extend(TPCH_ATTRIBUTES.iter().map(|a| (*a, DataType::Float)));
    Schema::from_pairs(&cols)
}

/// Generate `n` pre-joined rows with deterministic `seed`.
pub fn tpch_table(n: usize, seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Table::with_capacity(tpch_schema(), n);
    for rowid in 0..n {
        let has_li = rng.gen::<f64>() < P_LINEITEM;
        let has_ps = rng.gen::<f64>() < P_PARTSUPP;
        let has_cu = rng.gen::<f64>() < P_CUSTOMER;

        let mut row: Vec<Value> = Vec::with_capacity(11);
        row.push(Value::Int(rowid as i64));

        if has_li {
            let quantity = 1.0 + (rng.gen::<f64>() * 50.0).floor();
            // extendedprice ≈ quantity × unit price (TPC-H pricing shape).
            let unit = 900.0 + rng.gen::<f64>() * 1200.0;
            let extendedprice = quantity * unit;
            let discount = (rng.gen::<f64>() * 0.10 * 100.0).round() / 100.0;
            let tax = (rng.gen::<f64>() * 0.08 * 100.0).round() / 100.0;
            row.extend([
                Value::Float(quantity),
                Value::Float(extendedprice),
                Value::Float(discount),
                Value::Float(tax),
            ]);
            // part attributes ride along with lineitem rows.
            let retail = 900.0 + rng.gen::<f64>() * 1300.0;
            let size = 1.0 + (rng.gen::<f64>() * 50.0).floor();
            if has_ps {
                let availqty = 1.0 + (rng.gen::<f64>() * 9999.0).floor();
                let supplycost = 1.0 + rng.gen::<f64>() * 1000.0;
                row.extend([Value::Float(availqty), Value::Float(supplycost)]);
            } else {
                row.extend([Value::Null, Value::Null]);
            }
            row.extend([Value::Float(retail), Value::Float(size)]);
        } else {
            row.extend([Value::Null, Value::Null, Value::Null, Value::Null]);
            if has_ps {
                let availqty = 1.0 + (rng.gen::<f64>() * 9999.0).floor();
                let supplycost = 1.0 + rng.gen::<f64>() * 1000.0;
                row.extend([Value::Float(availqty), Value::Float(supplycost)]);
            } else {
                row.extend([Value::Null, Value::Null]);
            }
            row.extend([Value::Null, Value::Null]);
        }

        if has_cu {
            let acctbal = rng.gen::<f64>() * 11000.0 - 1000.0;
            let ordertotal = 1000.0 + rng.gen::<f64>() * 400_000.0;
            row.extend([Value::Float(acctbal), Value::Float(ordertotal)]);
        } else {
            row.extend([Value::Null, Value::Null]);
        }

        t.push_row(row).expect("row matches schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_shape() {
        let a = tpch_table(400, 1);
        let b = tpch_table(400, 1);
        assert_eq!(a, b);
        assert_eq!(a.schema().arity(), 11);
    }

    #[test]
    fn null_family_fractions_match_paper_shape() {
        let n = 20_000;
        let t = tpch_table(n, 99);
        let li = t
            .non_null_indices(&["quantity", "extendedprice"])
            .unwrap()
            .len() as f64;
        let ps = t
            .non_null_indices(&["availqty", "supplycost"])
            .unwrap()
            .len() as f64;
        let cu = t
            .non_null_indices(&["acctbal", "ordertotal"])
            .unwrap()
            .len() as f64;
        let nf = n as f64;
        assert!(
            (li / nf - P_LINEITEM).abs() < 0.02,
            "lineitem fraction {}",
            li / nf
        );
        assert!(
            (ps / nf - P_PARTSUPP).abs() < 0.02,
            "partsupp fraction {}",
            ps / nf
        );
        assert!(
            (cu / nf - P_CUSTOMER).abs() < 0.01,
            "customer fraction {}",
            cu / nf
        );
    }

    #[test]
    fn part_attributes_only_with_lineitem() {
        let t = tpch_table(5000, 3);
        let q = t.column("quantity").unwrap();
        let r = t.column("retailprice").unwrap();
        for i in 0..t.num_rows() {
            if r.f64_at(i).is_some() {
                assert!(q.f64_at(i).is_some(), "retailprice without lineitem at {i}");
            }
        }
    }

    #[test]
    fn extendedprice_tracks_quantity() {
        let t = tpch_table(5000, 17);
        let q = t.column("quantity").unwrap();
        let e = t.column("extendedprice").unwrap();
        for i in 0..t.num_rows() {
            if let (Some(qv), Some(ev)) = (q.f64_at(i), e.f64_at(i)) {
                let unit = ev / qv;
                assert!((900.0..=2100.0).contains(&unit), "unit price {unit}");
            }
        }
    }

    #[test]
    fn value_ranges() {
        let t = tpch_table(3000, 5);
        let d = t.column("discount").unwrap();
        for i in 0..t.num_rows() {
            if let Some(v) = d.f64_at(i) {
                assert!((0.0..=0.1).contains(&v));
            }
        }
        let s = t.column("size").unwrap();
        for i in 0..t.num_rows() {
            if let Some(v) = s.f64_at(i) {
                assert!((1.0..=51.0).contains(&v));
                assert_eq!(v.fract(), 0.0, "size is integral");
            }
        }
    }
}
