//! Synthetic recipes table for the paper's running example
//! (Example 1: the meal planner) and the quickstart example binary.

use paq_relational::{DataType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Schema: name, gluten marker, kilocalories (in thousands, like the
/// paper's 2.0–2.5 running-example bounds), saturated fat, carbs,
/// protein.
pub fn recipes_schema() -> Schema {
    Schema::from_pairs(&[
        ("name", DataType::Str),
        ("gluten", DataType::Str),
        ("kcal", DataType::Float),
        ("saturated_fat", DataType::Float),
        ("carbs", DataType::Float),
        ("protein", DataType::Float),
    ])
}

const BASES: [&str; 12] = [
    "oat bowl",
    "lentil soup",
    "grilled salmon",
    "quinoa salad",
    "tofu stir-fry",
    "rye bread",
    "chicken wrap",
    "mushroom risotto",
    "bean chili",
    "greek yogurt",
    "pasta primavera",
    "rice pilaf",
];

/// Generate `n` recipes with deterministic `seed`. Roughly 70% of the
/// recipes are gluten-free (the paper's base predicate selects these).
pub fn recipes_table(n: usize, seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Table::with_capacity(recipes_schema(), n);
    for i in 0..n {
        let base = BASES[rng.gen_range(0..BASES.len())];
        let name = format!("{base} #{i}");
        let gluten = if rng.gen::<f64>() < 0.7 {
            "free"
        } else {
            "full"
        };
        // kcal in thousands: meals between 0.15 and 1.2 kkcal.
        let kcal = 0.15 + rng.gen::<f64>() * 1.05;
        // Fat loosely increases with kcal.
        let saturated_fat = (kcal * 4.0 * rng.gen::<f64>() + 0.1).max(0.05);
        let carbs = 5.0 + rng.gen::<f64>() * 80.0;
        let protein = 2.0 + rng.gen::<f64>() * 40.0;
        t.push_row(vec![
            Value::Str(name),
            Value::Str(gluten.into()),
            Value::Float(kcal),
            Value::Float(saturated_fat),
            Value::Float(carbs),
            Value::Float(protein),
        ])
        .expect("row matches schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::Expr;

    #[test]
    fn deterministic_and_sized() {
        let a = recipes_table(100, 1);
        let b = recipes_table(100, 1);
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 100);
    }

    #[test]
    fn gluten_free_majority() {
        let t = recipes_table(2000, 2);
        let free = t
            .filter_indices(&Expr::col("gluten").eq(Expr::lit("free")))
            .unwrap()
            .len() as f64;
        let frac = free / 2000.0;
        assert!((0.6..=0.8).contains(&frac), "gluten-free fraction {frac}");
    }

    #[test]
    fn kcal_supports_running_example_bounds() {
        // Three meals summing into [2.0, 2.5] must exist: mean kcal
        // ≈ 0.675 ⇒ 3 × mean ≈ 2.0 — comfortably feasible.
        let t = recipes_table(500, 3);
        let kcal = t.column("kcal").unwrap();
        let mean: f64 = (0..500).map(|i| kcal.f64_at(i).unwrap()).sum::<f64>() / 500.0;
        assert!((0.5..=0.85).contains(&mean), "mean kcal {mean}");
    }
}
