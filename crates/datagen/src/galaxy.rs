//! Synthetic SDSS Galaxy view.
//!
//! Thirteen numeric attributes modeled on the SDSS DR12 `Galaxy` view
//! columns the sample queries touch: sky position (`ra`, `dec`), CCD
//! position (`rowc`, `colc`), Petrosian radii (`petror50_r`,
//! `petror90_r`), the five photometric magnitudes (`u`, `g`, `r`, `i`,
//! `z` — correlated through a latent brightness), dust `extinction_r`,
//! and `redshift` (skewed, correlated with faintness). All attributes
//! are strictly positive except `dec`, which we shift to [0, 180] so the
//! Theorem 3 radius derivation (which scales with `|t̃.attr|`) behaves
//! like it does on the real data's mostly-positive columns.

use paq_relational::{DataType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Names of the Galaxy table's numeric attributes, in schema order.
pub const GALAXY_ATTRIBUTES: [&str; 13] = [
    "ra",
    "dec",
    "rowc",
    "colc",
    "petror50_r",
    "petror90_r",
    "u",
    "g",
    "r",
    "i",
    "z",
    "extinction_r",
    "redshift",
];

/// Schema of the synthetic Galaxy table (an `objid` key plus the
/// numeric attributes).
pub fn galaxy_schema() -> Schema {
    let mut cols = vec![("objid", DataType::Int)];
    cols.extend(GALAXY_ATTRIBUTES.iter().map(|a| (*a, DataType::Float)));
    Schema::from_pairs(&cols)
}

/// Sample from an approximately normal distribution (sum of uniforms —
/// cheap, deterministic, and close enough for workload shape).
fn approx_normal(rng: &mut SmallRng, mean: f64, std: f64) -> f64 {
    // Sum of 6 uniforms − 3 has variance 6/12 = 0.5 ⇒ scale by √2.
    let s: f64 = (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0;
    mean + std * s * std::f64::consts::SQRT_2
}

/// Generate `n` Galaxy rows with deterministic `seed`.
pub fn galaxy_table(n: usize, seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Table::with_capacity(galaxy_schema(), n);
    for objid in 0..n {
        let ra = rng.gen::<f64>() * 360.0;
        let dec = rng.gen::<f64>() * 180.0; // shifted declination
        let rowc = rng.gen::<f64>() * 2048.0;
        let colc = rng.gen::<f64>() * 2048.0;

        // Latent brightness drives all five magnitudes; brighter
        // objects (smaller magnitude) are rarer — mild skew via max.
        let b = approx_normal(&mut rng, 19.0, 1.4)
            .max(approx_normal(&mut rng, 18.0, 1.4))
            .clamp(12.0, 26.0);
        let u = (b + 1.8 + approx_normal(&mut rng, 0.0, 0.35)).clamp(10.0, 30.0);
        let g = (b + 0.6 + approx_normal(&mut rng, 0.0, 0.20)).clamp(10.0, 30.0);
        let r = b;
        let i = (b - 0.35 + approx_normal(&mut rng, 0.0, 0.18)).clamp(10.0, 30.0);
        let z = (b - 0.55 + approx_normal(&mut rng, 0.0, 0.22)).clamp(10.0, 30.0);

        // Petrosian radii: log-normal-ish, r90 > r50.
        let r50 = (0.8 + rng.gen::<f64>().powi(2) * 8.0).max(0.3);
        let r90 = r50 * (1.8 + rng.gen::<f64>() * 1.2);

        let extinction = 0.02 + rng.gen::<f64>().powi(3) * 0.5;

        // Redshift: skewed toward 0, correlated with faintness.
        let faint = ((b - 15.0) / 10.0).clamp(0.0, 1.0);
        let redshift = (rng.gen::<f64>().powi(2) * 0.55 * (0.4 + 0.6 * faint)).max(1e-4);

        t.push_row(vec![
            Value::Int(objid as i64),
            Value::Float(ra),
            Value::Float(dec),
            Value::Float(rowc),
            Value::Float(colc),
            Value::Float(r50),
            Value::Float(r90),
            Value::Float(u),
            Value::Float(g),
            Value::Float(r),
            Value::Float(i),
            Value::Float(z),
            Value::Float(extinction),
            Value::Float(redshift),
        ])
        .expect("row matches schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_relational::agg::{aggregate, AggFunc};

    #[test]
    fn shape_and_determinism() {
        let a = galaxy_table(500, 7);
        let b = galaxy_table(500, 7);
        assert_eq!(a, b, "same seed ⇒ same table");
        assert_eq!(a.num_rows(), 500);
        assert_eq!(a.schema().arity(), 14);
        let c = galaxy_table(500, 8);
        assert_ne!(a, c, "different seed ⇒ different table");
    }

    #[test]
    fn attribute_ranges_are_physical() {
        let t = galaxy_table(2000, 42);
        let check = |attr: &str, lo: f64, hi: f64| {
            let min = aggregate(&t, AggFunc::Min, attr).unwrap().as_f64().unwrap();
            let max = aggregate(&t, AggFunc::Max, attr).unwrap().as_f64().unwrap();
            assert!(min >= lo, "{attr} min {min} < {lo}");
            assert!(max <= hi, "{attr} max {max} > {hi}");
        };
        check("ra", 0.0, 360.0);
        check("dec", 0.0, 180.0);
        check("r", 12.0, 26.0);
        check("u", 10.0, 30.0);
        check("redshift", 0.0, 0.6);
        check("petror50_r", 0.3, 9.0);
    }

    #[test]
    fn magnitudes_are_correlated() {
        let t = galaxy_table(3000, 11);
        let g = t.column("g").unwrap();
        let r = t.column("r").unwrap();
        let n = t.num_rows() as f64;
        let (mut sg, mut sr, mut sgr, mut sg2, mut sr2) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for idx in 0..t.num_rows() {
            let gv = g.f64_at(idx).unwrap();
            let rv = r.f64_at(idx).unwrap();
            sg += gv;
            sr += rv;
            sgr += gv * rv;
            sg2 += gv * gv;
            sr2 += rv * rv;
        }
        let cov = sgr / n - (sg / n) * (sr / n);
        let corr =
            cov / ((sg2 / n - (sg / n).powi(2)).sqrt() * (sr2 / n - (sr / n).powi(2)).sqrt());
        assert!(
            corr > 0.8,
            "g and r should be strongly correlated, got {corr}"
        );
    }

    #[test]
    fn petrosian_radii_ordered() {
        let t = galaxy_table(1000, 3);
        let r50 = t.column("petror50_r").unwrap();
        let r90 = t.column("petror90_r").unwrap();
        for i in 0..t.num_rows() {
            assert!(r90.f64_at(i).unwrap() > r50.f64_at(i).unwrap());
        }
    }

    #[test]
    fn redshift_skewed_toward_zero() {
        let t = galaxy_table(4000, 5);
        let mean = aggregate(&t, AggFunc::Avg, "redshift")
            .unwrap()
            .as_f64()
            .unwrap();
        let max = aggregate(&t, AggFunc::Max, "redshift")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(
            mean < max / 2.5,
            "mean {mean} vs max {max} — expected strong skew"
        );
    }

    #[test]
    fn all_attributes_numeric_and_non_null() {
        let t = galaxy_table(200, 9);
        for attr in GALAXY_ATTRIBUTES {
            let col = t.column(attr).unwrap();
            assert!(col.data_type().is_numeric());
            for i in 0..t.num_rows() {
                assert!(!col.is_null_at(i), "{attr} row {i} is NULL");
            }
        }
    }
}
