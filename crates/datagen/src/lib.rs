#![warn(missing_docs)]

//! # paq-datagen — synthetic datasets and workloads (§5.1)
//!
//! The paper evaluates on two datasets we cannot redistribute:
//!
//! * the **Galaxy** view of the Sloan Digital Sky Survey (≈5.5M rows,
//!   data release 12), and
//! * a **pre-joined TPC-H** table (full outer joins over the benchmark
//!   relations, ≈17.5M rows, NULLs where a join partner is absent).
//!
//! This crate generates tables with the same *shape*: matching column
//! mix, realistic correlations (e.g. SDSS magnitudes sharing a latent
//! brightness, redshift correlated with faintness), skew, and — for
//! TPC-H — the outer-join NULL structure that gives each query a
//! different non-NULL subset size (paper Fig. 3). Scales are arbitrary:
//! generators take a row count, so experiments run at laptop scale while
//! preserving who-beats-whom behavior.
//!
//! The 2×7 package-query workloads are synthesized exactly as §5.1
//! describes: global-constraint bounds derived from attribute statistics
//! multiplied by the expected feasible package size.

pub mod galaxy;
pub mod recipes;
pub mod tpch;
pub mod workload;

pub use galaxy::galaxy_table;
pub use recipes::recipes_table;
pub use tpch::tpch_table;
pub use workload::{
    add_non_null_guards, galaxy_workload, tpch_workload, workload_attributes, NamedQuery,
};

/// Default deterministic seed used across examples and benches.
pub const DEFAULT_SEED: u64 = 0x5D55_AA96;
