//! The 2×7 package-query workloads (§5.1 "Datasets and queries").
//!
//! The paper adapts seven SDSS sample queries and seven TPC-H query
//! templates into package queries, synthesizing each global-constraint
//! bound as *(attribute statistic) × (expected feasible package size)*.
//! This module reproduces that synthesis against whatever table the
//! generators produced: bounds are computed from the live data, so the
//! workload stays feasible at every scale.
//!
//! Two queries per dataset (Galaxy Q2/Q6) are deliberately *hard* for a
//! branch-and-bound solver: the objective attribute is also constrained
//! into a narrow window (a subset-sum shape), which is how this
//! reproduction realizes the paper's observation that DIRECT can fail
//! on some queries even when the data fits in memory.

use paq_lang::{parse_paql, validate, PackageQuery};
use paq_relational::agg::{aggregate, AggFunc};
use paq_relational::{Expr, RelResult, Table};

/// A workload query: name, PaQL text, parsed form, and the attribute
/// set whose non-NULL projection defines the effective input (Fig. 3).
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Query name ("Q1" … "Q7").
    pub name: String,
    /// The PaQL text (bounds already instantiated).
    pub text: String,
    /// Parsed query.
    pub query: PackageQuery,
    /// Attributes referenced by the query (global predicates +
    /// objective); the harness keeps only rows non-NULL on all of them.
    pub attributes: Vec<String>,
    /// Expected package cardinality used to synthesize bounds.
    pub expected_size: u64,
}

impl NamedQuery {
    /// Install `attr IS NOT NULL` base predicates for every query
    /// attribute — how the paper evaluates each TPC-H query on its
    /// non-NULL subset of the pre-joined outer-join table (§5.1). The
    /// ILP otherwise treats NULL coefficients as zero contribution,
    /// which diverges from SQL aggregate semantics over the package.
    pub fn with_non_null_guards(&self) -> NamedQuery {
        let mut out = self.clone();
        out.query = add_non_null_guards(&self.query, &self.attributes);
        out.text = out.query.to_string();
        out
    }
}

/// AND `attr IS NOT NULL` guards for every listed attribute onto the
/// query's base predicate (see [`NamedQuery::with_non_null_guards`]).
pub fn add_non_null_guards(query: &PackageQuery, attrs: &[String]) -> PackageQuery {
    let mut out = query.clone();
    for a in attrs {
        let guard = Expr::col(a.clone()).is_not_null();
        out.where_clause = Some(match out.where_clause.take() {
            Some(w) => w.and(guard),
            None => guard,
        });
    }
    out
}

fn mean(table: &Table, attr: &str) -> RelResult<f64> {
    Ok(aggregate(table, AggFunc::Avg, attr)?
        .as_f64()
        .unwrap_or(0.0))
}

fn named(name: &str, text: String, table: &Table, expected_size: u64) -> NamedQuery {
    let query = parse_paql(&text)
        .unwrap_or_else(|e| panic!("workload query {name} failed to parse: {e}\n{text}"));
    validate(&query, table.schema())
        .unwrap_or_else(|e| panic!("workload query {name} failed validation: {e}"));
    let attributes = query.query_attributes();
    NamedQuery {
        name: name.to_owned(),
        text,
        query,
        attributes,
        expected_size,
    }
}

/// The seven Galaxy package queries.
pub fn galaxy_workload(table: &Table) -> RelResult<Vec<NamedQuery>> {
    let m_r = mean(table, "r")?;
    let m_u = mean(table, "u")?;
    let m_g = mean(table, "g")?;
    let m_i = mean(table, "i")?;
    let m_ra = mean(table, "ra")?;
    let m_dec = mean(table, "dec")?;
    let m_z = mean(table, "redshift")?;
    let m_r50 = mean(table, "petror50_r")?;
    let m_r90 = mean(table, "petror90_r")?;

    let mut out = Vec::with_capacity(7);

    // Q1 — bright-object bundle: fixed cardinality, magnitude budget,
    // minimize dust extinction.
    out.push(named(
        "Q1",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) = 10 \
             AND SUM(P.r) BETWEEN {:.6} AND {:.6} \
             MINIMIZE SUM(P.extinction_r)",
            10.0 * m_r * 0.95,
            10.0 * m_r * 1.05
        ),
        table,
        10,
    ));

    // Q2 — HARD: maximize the very attribute that is pinned into a
    // ±0.5% window (subset-sum shape; DIRECT-killer, cf. paper Fig. 5).
    out.push(named(
        "Q2",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) BETWEEN 8 AND 12 \
             AND SUM(P.u) BETWEEN {:.6} AND {:.6} \
             MAXIMIZE SUM(P.u)",
            10.0 * m_u * 0.995,
            10.0 * m_u * 1.005
        ),
        table,
        10,
    ));

    // Q3 — redshift-bounded region with a size floor, maximize the
    // 90%-light radius.
    out.push(named(
        "Q3",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) = 15 \
             AND SUM(P.redshift) <= {:.6} \
             AND SUM(P.petror50_r) >= {:.6} \
             MAXIMIZE SUM(P.petror90_r)",
            15.0 * m_z * 1.1,
            15.0 * m_r50 * 0.9
        ),
        table,
        15,
    ));

    // Q4 — indicator-count comparison (the §3.1 subquery encoding).
    out.push(named(
        "Q4",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) = 12 \
             AND (SELECT COUNT(*) FROM P WHERE P.redshift > {:.6}) >= \
                 (SELECT COUNT(*) FROM P WHERE P.redshift <= {:.6}) \
             MINIMIZE SUM(P.u)",
            m_z, m_z
        ),
        table,
        12,
    ));

    // Q5 — small and easy: AVG constraint, minimize extinction.
    out.push(named(
        "Q5",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) = 5 \
             AND AVG(P.g) <= {:.6} \
             MINIMIZE SUM(P.extinction_r)",
            m_g
        ),
        table,
        5,
    ));

    // Q6 — HARD twin of Q2 on the i/z bands.
    out.push(named(
        "Q6",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) BETWEEN 10 AND 14 \
             AND SUM(P.i) BETWEEN {:.6} AND {:.6} \
             MAXIMIZE SUM(P.i)",
            12.0 * m_i * 0.995,
            12.0 * m_i * 1.005
        ),
        table,
        12,
    ));

    // Q7 — wide multi-constraint sky region, maximize total redshift.
    out.push(named(
        "Q7",
        format!(
            "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 \
             SUCH THAT COUNT(P.*) = 10 \
             AND SUM(P.ra) <= {:.6} \
             AND SUM(P.dec) <= {:.6} \
             AND SUM(P.petror90_r) >= {:.6} \
             MAXIMIZE SUM(P.redshift)",
            10.0 * m_ra * 1.05,
            10.0 * m_dec * 1.05,
            10.0 * m_r90 * 0.8
        ),
        table,
        10,
    ));

    Ok(out)
}

/// The seven TPC-H package queries. Bounds are computed over the
/// non-NULL subset of each query's attributes (SQL aggregates skip
/// NULLs, so plain means already do this).
pub fn tpch_workload(table: &Table) -> RelResult<Vec<NamedQuery>> {
    let m_qty = mean(table, "quantity")?;
    let m_price = mean(table, "extendedprice")?;
    let m_tax = mean(table, "tax")?;
    let m_retail = mean(table, "retailprice")?;
    let m_avail = mean(table, "availqty")?;
    let m_bal = mean(table, "acctbal")?;

    let mut out = Vec::with_capacity(7);

    // Q1 — pricing summary flavor: quantity window, minimize spend.
    out.push(named(
        "Q1",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) = 10 \
             AND SUM(P.quantity) BETWEEN {:.6} AND {:.6} \
             MINIMIZE SUM(P.extendedprice)",
            10.0 * m_qty * 0.9,
            10.0 * m_qty * 1.1
        ),
        table,
        10,
    ));

    // Q2 — minimum-cost supplier flavor (the paper's worst
    // approximation ratio happens on this minimization query).
    out.push(named(
        "Q2",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) = 8 \
             AND SUM(P.retailprice) BETWEEN {:.6} AND {:.6} \
             MINIMIZE SUM(P.supplycost)",
            8.0 * m_retail * 0.97,
            8.0 * m_retail * 1.03
        ),
        table,
        8,
    ));

    // Q3 — shipping-priority flavor with an indicator comparison.
    out.push(named(
        "Q3",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) BETWEEN 5 AND 10 \
             AND SUM(P.extendedprice) <= {:.6} \
             AND (SELECT COUNT(*) FROM P WHERE P.discount > 0.05) >= \
                 (SELECT COUNT(*) FROM P WHERE P.discount <= 0.05) \
             MAXIMIZE SUM(P.quantity)",
            10.0 * m_price
        ),
        table,
        8,
    ));

    // Q4 — order-priority flavor: AVG tax cap, maximize revenue.
    out.push(named(
        "Q4",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) = 12 \
             AND AVG(P.tax) <= {:.6} \
             AND SUM(P.quantity) <= {:.6} \
             MAXIMIZE SUM(P.extendedprice)",
            m_tax,
            12.0 * m_qty
        ),
        table,
        12,
    ));

    // Q5 — customer-volume flavor on the tiny customer family
    // (the 240k-row query of paper Fig. 3).
    out.push(named(
        "Q5",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) = 6 \
             AND SUM(P.acctbal) >= {:.6} \
             MAXIMIZE SUM(P.ordertotal)",
            6.0 * m_bal * 0.5
        ),
        table,
        6,
    ));

    // Q6 — forecasting-revenue flavor on the partsupp family (the
    // 11.8M-row query of paper Fig. 3).
    out.push(named(
        "Q6",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) = 10 \
             AND SUM(P.availqty) BETWEEN {:.6} AND {:.6} \
             MINIMIZE SUM(P.supplycost)",
            10.0 * m_avail * 0.9,
            10.0 * m_avail * 1.1
        ),
        table,
        10,
    ));

    // Q7 — volume-shipping flavor: two budgets, maximize revenue.
    out.push(named(
        "Q7",
        format!(
            "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 \
             SUCH THAT COUNT(P.*) = 9 \
             AND SUM(P.quantity) <= {:.6} \
             AND SUM(P.tax) <= {:.6} \
             MAXIMIZE SUM(P.extendedprice)",
            9.0 * m_qty,
            9.0 * m_tax
        ),
        table,
        9,
    ));

    Ok(out)
}

/// Union of all query attributes — the *workload attributes* the paper
/// partitions on (§5.2.1).
pub fn workload_attributes(queries: &[NamedQuery]) -> Vec<String> {
    let mut out: Vec<String> = queries.iter().flat_map(|q| q.attributes.clone()).collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galaxy::galaxy_table;
    use crate::tpch::tpch_table;

    #[test]
    fn galaxy_workload_parses_and_covers_attributes() {
        let t = galaxy_table(500, 1);
        let ws = galaxy_workload(&t).unwrap();
        assert_eq!(ws.len(), 7);
        for q in &ws {
            assert!(!q.attributes.is_empty(), "{} has no attributes", q.name);
            for a in &q.attributes {
                assert!(t.schema().contains(a), "{}: unknown attr {a}", q.name);
            }
        }
        let union = workload_attributes(&ws);
        assert!(
            union.len() >= 8,
            "workload should span many attributes: {union:?}"
        );
    }

    #[test]
    fn tpch_workload_parses_and_targets_families() {
        let t = tpch_table(2000, 2);
        let ws = tpch_workload(&t).unwrap();
        assert_eq!(ws.len(), 7);
        // Q5 touches only the customer family; Q6 only partsupp.
        let q5 = &ws[4];
        assert!(q5
            .attributes
            .iter()
            .all(|a| a == "acctbal" || a == "ordertotal"));
        let q6 = &ws[5];
        assert!(q6
            .attributes
            .iter()
            .all(|a| a == "availqty" || a == "supplycost"));
    }

    #[test]
    fn non_null_subset_sizes_scale_like_figure_3() {
        let n = 10_000;
        let t = tpch_table(n, 3);
        let ws = tpch_workload(&t).unwrap();
        let size = |q: &NamedQuery| {
            let attrs: Vec<&str> = q.attributes.iter().map(String::as_str).collect();
            t.non_null_indices(&attrs).unwrap().len()
        };
        let q1 = size(&ws[0]);
        let q5 = size(&ws[4]);
        let q6 = size(&ws[5]);
        assert!(
            q5 < q1 / 5,
            "customer query must be much smaller: {q5} vs {q1}"
        );
        assert!(q6 > q1, "partsupp query must be the largest: {q6} vs {q1}");
    }

    #[test]
    fn workload_text_round_trips_through_parser() {
        let t = galaxy_table(300, 9);
        for q in galaxy_workload(&t).unwrap() {
            let reparsed = parse_paql(&q.query.to_string()).unwrap();
            assert_eq!(reparsed, q.query, "{} display round-trip", q.name);
        }
    }

    #[test]
    fn bounds_follow_data_statistics() {
        // Different seeds shift the means ⇒ different instantiated
        // bounds in the query text.
        let a = galaxy_workload(&galaxy_table(400, 1)).unwrap();
        let b = galaxy_workload(&galaxy_table(400, 2)).unwrap();
        assert_ne!(a[0].text, b[0].text);
    }
}
