#![warn(missing_docs)]

//! # paq-core — package query evaluation
//!
//! The paper's primary contribution: evaluating PaQL package queries on
//! top of a relational engine and a black-box ILP solver.
//!
//! * [`Package`] — the answer object: a multiset of input tuples with
//!   aggregate accessors, feasibility checking, and materialization.
//! * [`Direct`] (§3.2) — translate the whole query to one ILP and hand
//!   it to the solver. Exact, but bound by the solver's memory/time
//!   behavior on large inputs.
//! * [`SketchRefine`] (§4) — the scalable evaluator: **sketch** an
//!   initial package over the partitioning's representative tuples,
//!   then **refine** group by group with greedy backtracking
//!   (Algorithm 2), optionally falling back to the hybrid sketch query
//!   of §4.4 on initial infeasibility. Guarantees (1±ε)⁶-approximate
//!   objectives when the partitioning obeys the Theorem 3 radius limit.
//! * [`naive`] — the SQL self-join formulation of §2 used as the
//!   Figure 1 baseline: exhaustive cardinality-k enumeration.

pub mod binding;
pub mod direct;
pub mod error;
pub mod features;
pub mod naive;
pub mod package;
pub mod sketchrefine;

pub use binding::{catalog_scope, check_table_binding};
pub use direct::Direct;
pub use error::{EngineError, EngineResult};
pub use features::{QueryFeatures, FEATURE_DIM};
pub use package::Package;
pub use sketchrefine::{SketchRefine, SketchRefineOptions, SketchRefineReport};

use paq_lang::PackageQuery;
use paq_relational::Table;

/// A package-query evaluation strategy (DIRECT, SKETCHREFINE, …).
pub trait Evaluator {
    /// Human-readable strategy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Evaluate `query` against `table`, producing an answer package.
    ///
    /// Infeasibility and solver resource failures are reported through
    /// [`EngineError`].
    fn evaluate(&self, query: &PackageQuery, table: &Table) -> EngineResult<Package>;
}
