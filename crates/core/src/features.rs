//! Query feature extraction for cost-based routing.
//!
//! The planner's Direct-vs-SketchRefine crossover (paper §5: DIRECT
//! wins on small inputs, SKETCHREFINE past a data-size/complexity
//! crossover) depends on more than the row count the static threshold
//! looks at. [`QueryFeatures`] condenses a compiled query + its input
//! table into the small numeric vector a per-strategy cost model is
//! trained on: row count, global-constraint count, the `REPEAT`
//! multiplicity bound, and the partition group-size target τ the
//! planner would build with.
//!
//! Everything here is a **pure function of the query, the snapshot row
//! count, and the session config** — no clocks, no randomness — so two
//! sessions extracting features for the same plan always produce the
//! identical vector. That purity is what makes routing deterministic:
//! identical telemetry history + identical features ⇒ identical route.

use paq_lang::PackageQuery;

/// Number of model inputs (bias included); see
/// [`QueryFeatures::vector`].
pub const FEATURE_DIM: usize = 5;

/// The routing features of one (query, table-snapshot) pair.
///
/// ```
/// use paq_core::QueryFeatures;
/// use paq_lang::parse_paql;
///
/// let q = parse_paql(
///     "SELECT PACKAGE(R) AS P FROM Items R REPEAT 1 \
///      SUCH THAT COUNT(P.*) = 3 AND SUM(P.w) <= 10 MINIMIZE SUM(P.v)",
/// )
/// .unwrap();
/// let f = QueryFeatures::extract(&q, 500, 10);
/// assert_eq!(f.rows, 500);
/// assert_eq!(f.constraints, 2);
/// assert_eq!(f.repeat_bound, 2); // REPEAT 1 ⇒ each tuple at most twice
/// assert_eq!(f.tau, 50); // 500 rows / 10 target groups
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryFeatures {
    /// Row count of the input table snapshot.
    pub rows: usize,
    /// Number of global (`SUCH THAT`) predicates.
    pub constraints: usize,
    /// Per-tuple multiplicity bound (`REPEAT k` ⇒ `k + 1`); `0` encodes
    /// unlimited repetition. The planner neither model-routes such
    /// queries (SKETCHREFINE's group caps degenerate) nor records
    /// their executions as telemetry — `0` sits at the numeric bottom
    /// of an axis they semantically max out, so training on them
    /// would invert the feature's meaning.
    pub repeat_bound: u64,
    /// Partition group-size target τ = `rows / default_groups` (min 2),
    /// the same formula the lazy partitioning build uses. Always the
    /// *plan-time estimate*, even when an execution later runs on a
    /// provided or cached partitioning with a different actual τ, so
    /// recorded observations and routing-time predictions live in one
    /// consistent feature space.
    pub tau: usize,
}

impl QueryFeatures {
    /// Extract features from a compiled query against a table snapshot
    /// of `rows` rows, under a session targeting `default_groups`
    /// partition groups.
    pub fn extract(query: &PackageQuery, rows: usize, default_groups: usize) -> Self {
        QueryFeatures {
            rows,
            constraints: query.such_that.len(),
            repeat_bound: query.max_multiplicity().unwrap_or(0),
            tau: (rows / default_groups.max(1)).max(2),
        }
    }

    /// The model input vector `[1, rows, constraints, repeat_bound, τ]`
    /// (leading 1 is the bias term).
    pub fn vector(&self) -> [f64; FEATURE_DIM] {
        [
            1.0,
            self.rows as f64,
            self.constraints as f64,
            self.repeat_bound as f64,
            self.tau as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_lang::parse_paql;

    #[test]
    fn unbounded_repeat_encodes_as_zero() {
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM Items R SUCH THAT COUNT(P.*) = 3").unwrap();
        let f = QueryFeatures::extract(&q, 10, 10);
        assert_eq!(f.repeat_bound, 0);
        assert_eq!(f.constraints, 1);
        assert_eq!(f.tau, 2, "τ floor is 2");
        assert_eq!(f.vector()[0], 1.0, "bias term");
    }

    #[test]
    fn tau_matches_the_lazy_build_formula() {
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM Items R REPEAT 0 SUCH THAT COUNT(P.*) = 3")
            .unwrap();
        // Same expression as the planner's lazy partitioning build:
        // (rows / default_groups.max(1)).max(2).
        assert_eq!(QueryFeatures::extract(&q, 12_800, 10).tau, 1_280);
        assert_eq!(QueryFeatures::extract(&q, 12_800, 0).tau, 12_800);
        assert_eq!(QueryFeatures::extract(&q, 5, 10).tau, 2);
    }
}
