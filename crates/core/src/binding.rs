//! Legacy table-binding checks for catalog-less evaluation.
//!
//! `Evaluator::evaluate(&query, &table)` binds the table argument
//! *positionally*: the query's `FROM Recipes R` relation name is never
//! consulted, because a bare [`Table`] carries no name. That silent
//! mismatch bit callers who passed the wrong table. This module makes
//! the legacy path defensive:
//!
//! * [`check_table_binding`] validates that the passed table actually
//!   provides every attribute the query references (so a wrong-table
//!   mistake fails loudly, with the FROM relation named in the error);
//! * the first catalog-less evaluation in a process emits a one-line
//!   stderr note pointing at `paq_db::PackageDb`, which resolves
//!   relations by name.
//!
//! `PackageDb` itself resolves and validates queries against the
//! catalog *before* invoking an evaluator, so it wraps those calls in
//! a [`catalog_scope`] guard: inside the scope the check is a no-op —
//! no re-validation, no enrichment, no note — while genuinely
//! catalog-less callers elsewhere in the process keep the diagnostic.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use paq_lang::{validate, PackageQuery, PaqlError};
use paq_relational::Table;

use crate::error::EngineResult;

static NOTE_EMITTED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static IN_CATALOG_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as evaluating on behalf of a
/// name-resolving catalog; see [`catalog_scope`].
pub struct CatalogScopeGuard {
    was_set: bool,
}

impl Drop for CatalogScopeGuard {
    fn drop(&mut self) {
        IN_CATALOG_SCOPE.with(|f| f.set(self.was_set));
    }
}

/// Enter a catalog-resolved evaluation scope: until the returned guard
/// drops, [`check_table_binding`] on this thread is a no-op (the
/// catalog has already validated the query against the resolved
/// table).
pub fn catalog_scope() -> CatalogScopeGuard {
    let was_set = IN_CATALOG_SCOPE.with(|f| f.replace(true));
    CatalogScopeGuard { was_set }
}

/// Validate `query` against the positionally-bound `table`, naming the
/// query's `FROM` relation in any failure so wrong-table mistakes are
/// diagnosable. Emits a one-time stderr note on the first catalog-less
/// use in the process. Inside a [`catalog_scope`], does nothing.
pub fn check_table_binding(query: &PackageQuery, table: &Table) -> EngineResult<()> {
    if IN_CATALOG_SCOPE.with(Cell::get) {
        return Ok(());
    }
    if let Err(e) = validate(query, table.schema()) {
        let enriched = match e {
            PaqlError::Semantic(msg) => PaqlError::Semantic(format!(
                "table bound positionally for FROM relation '{}': {msg}",
                query.relation
            )),
            other => other,
        };
        return Err(enriched.into());
    }
    if !NOTE_EMITTED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "[paq-core] note: Evaluator::evaluate() binds the table argument positionally; \
             the FROM relation name ('{}') is not resolved against a catalog. \
             Use paq_db::PackageDb to bind tables by name.",
            query.relation
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;
    use paq_lang::parse_paql;
    use paq_relational::{DataType, Schema, Value};

    #[test]
    fn wrong_table_names_the_from_relation() {
        let mut t = Table::new(Schema::from_pairs(&[("other", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.kcal) <= 2.5")
            .unwrap();
        match check_table_binding(&q, &t) {
            Err(EngineError::Language(PaqlError::Semantic(msg))) => {
                assert!(
                    msg.contains("Recipes"),
                    "error must name the relation: {msg}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn matching_table_passes() {
        let mut t = Table::new(Schema::from_pairs(&[("kcal", DataType::Float)]));
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.kcal) <= 2.5")
            .unwrap();
        assert!(check_table_binding(&q, &t).is_ok());
    }

    #[test]
    fn catalog_scope_skips_the_check_and_restores_on_drop() {
        let t = Table::new(Schema::from_pairs(&[("other", DataType::Float)]));
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.kcal) <= 2.5")
            .unwrap();
        {
            let _guard = catalog_scope();
            // Inside the scope the (invalid) binding is not re-checked:
            // the catalog is presumed to have validated already.
            assert!(check_table_binding(&q, &t).is_ok());
            // Scopes nest.
            let inner = catalog_scope();
            drop(inner);
            assert!(check_table_binding(&q, &t).is_ok());
        }
        // Outside the scope the check is live again.
        assert!(check_table_binding(&q, &t).is_err());
    }
}
