//! The [`Package`] answer object.
//!
//! A package is a *multiset* of tuples from the input relation (§2.1):
//! tuples may repeat up to the query's `REPEAT` bound. Internally a
//! package stores `(row, multiplicity)` pairs against its source table;
//! it can compute aggregates, check feasibility against a query, and
//! materialize into a standalone [`Table`] whose schema matches the
//! input relation — exactly how the paper represents packages
//! relationally (§5.1 "Software").

use paq_lang::ast::{AggExpr, AggTerm, GlobalPredicate, PackageQuery};
use paq_relational::agg::AggFunc;
use paq_relational::{RelResult, Table};

use crate::error::{EngineError, EngineResult};

/// A package: a multiset of rows of a source table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Package {
    /// `(row index, multiplicity)` with multiplicity ≥ 1, sorted by row.
    members: Vec<(usize, u64)>,
}

impl Package {
    /// The empty package.
    pub fn empty() -> Self {
        Package {
            members: Vec::new(),
        }
    }

    /// Build from `(row, multiplicity)` pairs; zero multiplicities are
    /// dropped, duplicates merged, order normalized.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, u64)>) -> Self {
        let mut members: Vec<(usize, u64)> = pairs.into_iter().filter(|(_, m)| *m > 0).collect();
        members.sort_by_key(|(r, _)| *r);
        members.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        Package { members }
    }

    /// The `(row, multiplicity)` pairs, sorted by row.
    pub fn members(&self) -> &[(usize, u64)] {
        &self.members
    }

    /// Total number of tuples including repetitions (`COUNT(P.*)`).
    pub fn cardinality(&self) -> u64 {
        self.members.iter().map(|(_, m)| m).sum()
    }

    /// Number of distinct source tuples.
    pub fn distinct_tuples(&self) -> usize {
        self.members.len()
    }

    /// `true` when the package holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Largest multiplicity of any single tuple.
    pub fn max_multiplicity(&self) -> u64 {
        self.members.iter().map(|(_, m)| *m).max().unwrap_or(0)
    }

    /// Aggregate over the package with multiplicity (SQL semantics:
    /// NULLs skipped; empty aggregates of SUM return 0 here because the
    /// package-level linear semantics of §3.1 treat an empty selection
    /// as the zero vector).
    pub fn aggregate(&self, table: &Table, func: AggFunc, attr: &str) -> RelResult<f64> {
        if func == AggFunc::Count {
            return Ok(self.cardinality() as f64);
        }
        let col = table.column(attr)?;
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &(row, mult) in &self.members {
            if let Some(v) = col.f64_at(row) {
                sum += v * mult as f64;
                count += mult;
                min = min.min(v);
                max = max.max(v);
            }
        }
        Ok(match func {
            AggFunc::Count => unreachable!(),
            AggFunc::Sum => sum,
            AggFunc::Avg => {
                if count == 0 {
                    0.0
                } else {
                    sum / count as f64
                }
            }
            AggFunc::Min => {
                if count == 0 {
                    0.0
                } else {
                    min
                }
            }
            AggFunc::Max => {
                if count == 0 {
                    0.0
                } else {
                    max
                }
            }
        })
    }

    /// Value of an [`AggExpr`] over this package.
    pub fn agg_expr_value(&self, table: &Table, agg: &AggExpr) -> EngineResult<f64> {
        Ok(match agg {
            AggExpr::Count => self.cardinality() as f64,
            AggExpr::Sum(attr) => self.aggregate(table, AggFunc::Sum, attr)?,
            AggExpr::Avg(attr) => self.aggregate(table, AggFunc::Avg, attr)?,
            AggExpr::CountWhere(filter) => {
                let mut total = 0.0;
                for &(row, mult) in &self.members {
                    if filter
                        .eval_bool(table, row)
                        .map_err(EngineError::Relational)?
                        .unwrap_or(false)
                    {
                        total += mult as f64;
                    }
                }
                total
            }
            AggExpr::SumWhere(attr, filter) => {
                let col = table.column(attr).map_err(EngineError::Relational)?;
                let mut total = 0.0;
                for &(row, mult) in &self.members {
                    if filter
                        .eval_bool(table, row)
                        .map_err(EngineError::Relational)?
                        .unwrap_or(false)
                    {
                        total += col.f64_at(row).unwrap_or(0.0) * mult as f64;
                    }
                }
                total
            }
        })
    }

    /// The query's objective value for this package (0 for vacuous
    /// objectives).
    pub fn objective_value(&self, query: &PackageQuery, table: &Table) -> EngineResult<f64> {
        match &query.objective {
            Some(obj) => self.agg_expr_value(table, &obj.agg),
            None => Ok(0.0),
        }
    }

    /// Check this package against *all* of the query's conditions:
    /// base predicate on every member, the repetition bound, and every
    /// global predicate (with tolerance `tol` on aggregate bounds).
    pub fn satisfies(&self, query: &PackageQuery, table: &Table, tol: f64) -> EngineResult<bool> {
        if let Some(maxm) = query.max_multiplicity() {
            if self.max_multiplicity() > maxm {
                return Ok(false);
            }
        }
        if let Some(w) = &query.where_clause {
            for &(row, _) in &self.members {
                if !w
                    .eval_bool(table, row)
                    .map_err(EngineError::Relational)?
                    .unwrap_or(false)
                {
                    return Ok(false);
                }
            }
        }
        for pred in &query.such_that {
            match pred {
                GlobalPredicate::Between { agg, lo, hi } => {
                    let v = self.agg_expr_value(table, agg)?;
                    let scale = 1.0_f64.max(v.abs());
                    if v < lo - tol * scale || v > hi + tol * scale {
                        return Ok(false);
                    }
                }
                GlobalPredicate::Cmp { lhs, op, rhs } => {
                    let l = self.term_value(table, lhs)?;
                    let r = self.term_value(table, rhs)?;
                    let scale = 1.0_f64.max(l.abs().max(r.abs()));
                    let ok = match op {
                        paq_relational::expr::CmpOp::Le | paq_relational::expr::CmpOp::Lt => {
                            l <= r + tol * scale
                        }
                        paq_relational::expr::CmpOp::Ge | paq_relational::expr::CmpOp::Gt => {
                            l >= r - tol * scale
                        }
                        paq_relational::expr::CmpOp::Eq => (l - r).abs() <= tol * scale,
                        paq_relational::expr::CmpOp::Ne => (l - r).abs() > tol * scale,
                    };
                    if !ok {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    fn term_value(&self, table: &Table, term: &AggTerm) -> EngineResult<f64> {
        match term {
            AggTerm::Const(c) => Ok(*c),
            AggTerm::Agg(a) => self.agg_expr_value(table, a),
        }
    }

    /// Materialize the package as a standalone table (schema = input
    /// schema, one physical row per multiplicity unit).
    pub fn materialize(&self, table: &Table) -> Table {
        let mut indices = Vec::with_capacity(self.cardinality() as usize);
        for &(row, mult) in &self.members {
            for _ in 0..mult {
                indices.push(row);
            }
        }
        table.take(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_lang::parse_paql;
    use paq_relational::{DataType, Schema, Value};

    fn table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("kcal", DataType::Float),
            ("fat", DataType::Float),
            ("gluten", DataType::Str),
        ]));
        for (k, f, g) in [
            (0.5, 1.0, "free"),
            (1.0, 2.0, "free"),
            (2.0, 4.0, "full"),
            (0.25, 0.5, "free"),
        ] {
            t.push_row(vec![Value::Float(k), Value::Float(f), g.into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn from_pairs_normalizes() {
        let p = Package::from_pairs(vec![(3, 1), (1, 2), (3, 1), (0, 0)]);
        assert_eq!(p.members(), &[(1, 2), (3, 2)]);
        assert_eq!(p.cardinality(), 4);
        assert_eq!(p.distinct_tuples(), 2);
        assert_eq!(p.max_multiplicity(), 2);
    }

    #[test]
    fn empty_package() {
        let p = Package::empty();
        assert!(p.is_empty());
        assert_eq!(p.cardinality(), 0);
        assert_eq!(p.max_multiplicity(), 0);
    }

    #[test]
    fn aggregates_respect_multiplicity() {
        let t = table();
        let p = Package::from_pairs(vec![(0, 2), (1, 1)]);
        assert_eq!(p.aggregate(&t, AggFunc::Count, "kcal").unwrap(), 3.0);
        assert_eq!(p.aggregate(&t, AggFunc::Sum, "kcal").unwrap(), 2.0);
        assert_eq!(p.aggregate(&t, AggFunc::Avg, "kcal").unwrap(), 2.0 / 3.0);
        assert_eq!(p.aggregate(&t, AggFunc::Min, "kcal").unwrap(), 0.5);
        assert_eq!(p.aggregate(&t, AggFunc::Max, "kcal").unwrap(), 1.0);
    }

    #[test]
    fn materialize_expands_multiset() {
        let t = table();
        let p = Package::from_pairs(vec![(0, 2), (2, 1)]);
        let m = p.materialize(&t);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.schema(), t.schema());
        assert_eq!(m.value(0, "kcal").unwrap(), Value::Float(0.5));
        assert_eq!(m.value(1, "kcal").unwrap(), Value::Float(0.5));
        assert_eq!(m.value(2, "kcal").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn satisfies_checks_everything() {
        let t = table();
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             WHERE R.gluten = 'free' \
             SUCH THAT COUNT(P.*) = 2 AND SUM(P.kcal) BETWEEN 0.5 AND 1.6 \
             MINIMIZE SUM(P.fat)",
        )
        .unwrap();
        // {0, 1}: kcal 1.5 ✓, both gluten-free ✓, count 2 ✓.
        let good = Package::from_pairs(vec![(0, 1), (1, 1)]);
        assert!(good.satisfies(&q, &t, 1e-9).unwrap());
        // {0, 2}: tuple 2 is gluten-full.
        let bad_where = Package::from_pairs(vec![(0, 1), (2, 1)]);
        assert!(!bad_where.satisfies(&q, &t, 1e-9).unwrap());
        // {0, 0}: violates REPEAT 0.
        let bad_repeat = Package::from_pairs(vec![(0, 2)]);
        assert!(!bad_repeat.satisfies(&q, &t, 1e-9).unwrap());
        // {0, 3}: kcal 0.75 ✓ count 2 ✓ — fine.
        let good2 = Package::from_pairs(vec![(0, 1), (3, 1)]);
        assert!(good2.satisfies(&q, &t, 1e-9).unwrap());
        // {1}: count 1 ≠ 2.
        let bad_count = Package::from_pairs(vec![(1, 1)]);
        assert!(!bad_count.satisfies(&q, &t, 1e-9).unwrap());
    }

    #[test]
    fn objective_value_and_vacuous() {
        let t = table();
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R SUCH THAT COUNT(P.*) >= 1 MINIMIZE SUM(P.fat)",
        )
        .unwrap();
        let p = Package::from_pairs(vec![(0, 1), (1, 2)]);
        assert_eq!(p.objective_value(&q, &t).unwrap(), 5.0);
        let vacuous = parse_paql("SELECT PACKAGE(R) AS P FROM R").unwrap();
        assert_eq!(p.objective_value(&vacuous, &t).unwrap(), 0.0);
    }

    #[test]
    fn count_where_and_sum_where_values() {
        let t = table();
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R SUCH THAT \
             (SELECT COUNT(*) FROM P WHERE kcal >= 1.0) <= 2 AND \
             (SELECT SUM(fat) FROM P WHERE kcal >= 1.0) <= 8",
        )
        .unwrap();
        let p = Package::from_pairs(vec![(1, 2), (3, 1)]);
        match (&q.such_that[0], &q.such_that[1]) {
            (
                GlobalPredicate::Cmp {
                    lhs: AggTerm::Agg(cw),
                    ..
                },
                GlobalPredicate::Cmp {
                    lhs: AggTerm::Agg(sw),
                    ..
                },
            ) => {
                assert_eq!(p.agg_expr_value(&t, cw).unwrap(), 2.0);
                assert_eq!(p.agg_expr_value(&t, sw).unwrap(), 4.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.satisfies(&q, &t, 1e-9).unwrap());
    }

    #[test]
    fn null_cells_are_skipped() {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        t.push_row(vec![Value::Float(4.0)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let p = Package::from_pairs(vec![(0, 1), (1, 3)]);
        assert_eq!(p.aggregate(&t, AggFunc::Sum, "x").unwrap(), 4.0);
        assert_eq!(p.aggregate(&t, AggFunc::Avg, "x").unwrap(), 4.0);
        assert_eq!(p.aggregate(&t, AggFunc::Count, "x").unwrap(), 4.0);
    }
}
