//! DIRECT evaluation (§3.2 of the paper).
//!
//! Three steps: (1) translate the PaQL query to an ILP via the §3.1
//! rules, (2) compute base relations and eliminate non-qualifying
//! tuples (done inside the translation), (3) run the black-box ILP
//! solver and decode the variable assignment into a [`Package`].
//!
//! DIRECT is exact but inherits the solver's two failure modes: the
//! whole problem must fit in (configured) memory, and hard instances
//! can exhaust the time budget — both surface as
//! [`EngineError::SolverGaveUp`].

use std::sync::Arc;

use paq_lang::{translate, PackageQuery};
use paq_relational::Table;
use paq_solver::{MilpSolver, SolveOutcome, SolverConfig, Telemetry};

use crate::error::{EngineError, EngineResult};
use crate::package::Package;
use crate::Evaluator;

/// The DIRECT evaluator.
#[derive(Debug, Clone, Default)]
pub struct Direct {
    config: SolverConfig,
    telemetry: Option<Arc<Telemetry>>,
}

impl Direct {
    /// DIRECT with a specific solver configuration.
    pub fn new(config: SolverConfig) -> Self {
        Direct {
            config,
            telemetry: None,
        }
    }

    /// Attach shared telemetry (solver call counting for experiments).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The solver configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    fn solver(&self) -> MilpSolver {
        let s = MilpSolver::new(self.config.clone());
        match &self.telemetry {
            Some(t) => s.with_telemetry(Arc::clone(t)),
            None => s,
        }
    }
}

impl Evaluator for Direct {
    fn name(&self) -> &'static str {
        "DIRECT"
    }

    fn evaluate(&self, query: &PackageQuery, table: &Table) -> EngineResult<Package> {
        crate::binding::check_table_binding(query, table)?;
        let translation = translate(query, table)?;
        let _span = paq_obs::span("direct.solve");
        let result = self.solver().solve(&translation.model);
        match result.outcome {
            SolveOutcome::Optimal(sol) | SolveOutcome::Feasible { best: sol, .. } => {
                Ok(Package::from_pairs(translation.decode(&sol.values)))
            }
            SolveOutcome::Infeasible => Err(EngineError::infeasible()),
            SolveOutcome::Unbounded => Err(EngineError::Unbounded),
            SolveOutcome::ResourceExhausted(limit) => Err(EngineError::SolverGaveUp(limit)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paq_lang::parse_paql;
    use paq_relational::{DataType, Schema, Value};

    fn table(n: usize) -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("value", DataType::Float),
            ("weight", DataType::Float),
        ]));
        for i in 0..n {
            let v = ((i * 17) % 13) as f64 + 1.0;
            let w = ((i * 7) % 5) as f64 + 1.0;
            t.push_row(vec![Value::Float(v), Value::Float(w)]).unwrap();
        }
        t
    }

    #[test]
    fn optimal_package_is_feasible_and_named() {
        let t = table(50);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 5 AND SUM(P.weight) <= 12 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let d = Direct::default();
        assert_eq!(d.name(), "DIRECT");
        let pkg = d.evaluate(&q, &t).unwrap();
        assert_eq!(pkg.cardinality(), 5);
        assert!(pkg.satisfies(&q, &t, 1e-9).unwrap());
    }

    #[test]
    fn infeasible_query_reports_proved_infeasibility() {
        let t = table(10);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 100",
        )
        .unwrap();
        match Direct::default().evaluate(&q, &t) {
            Err(EngineError::Infeasible {
                possibly_false: false,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbounded_objective_detected() {
        let t = table(10);
        // Unlimited repetition, maximize value, only a lower bound.
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R \
             SUCH THAT COUNT(P.*) >= 1 MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        assert_eq!(
            Direct::default().evaluate(&q, &t),
            Err(EngineError::Unbounded)
        );
    }

    #[test]
    fn tiny_memory_budget_reproduces_cplex_failure() {
        let t = table(200);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 5 AND SUM(P.weight) <= 9 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let d = Direct::new(SolverConfig::default().with_memory_limit(64));
        match d.evaluate(&q, &t) {
            Err(EngineError::SolverGaveUp(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn telemetry_counts_one_call() {
        let t = table(20);
        let q =
            parse_paql("SELECT PACKAGE(R) AS P FROM R REPEAT 0 SUCH THAT COUNT(P.*) = 2").unwrap();
        let tel = Arc::new(Telemetry::new());
        let d = Direct::default().with_telemetry(Arc::clone(&tel));
        d.evaluate(&q, &t).unwrap();
        assert_eq!(tel.calls(), 1);
    }
}
