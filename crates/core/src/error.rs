//! Engine error type.

use std::fmt;

use paq_solver::solution::LimitKind;

/// Errors from package-query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query has no feasible package. For SKETCHREFINE this may be
    /// *false infeasibility* (§4.4) — `possibly_false` is `true` when
    /// the verdict came from the approximate pipeline rather than a
    /// proof on the full problem.
    Infeasible {
        /// Whether the verdict could be a false negative.
        possibly_false: bool,
    },
    /// The objective is unbounded (e.g. unlimited REPEAT with an
    /// unconstrained maximization).
    Unbounded,
    /// The black-box solver exhausted a resource budget before
    /// producing any answer — the CPLEX failure mode of §3.2/§5.2.1.
    SolverGaveUp(LimitKind),
    /// Language-level error (parse/validate/translate).
    Language(paq_lang::PaqlError),
    /// Relational substrate error.
    Relational(paq_relational::RelError),
    /// Evaluator misuse (e.g. the naive evaluator on a query without a
    /// fixed cardinality).
    Unsupported(String),
}

impl EngineError {
    /// Plain infeasibility (proved on the full problem).
    pub fn infeasible() -> Self {
        EngineError::Infeasible {
            possibly_false: false,
        }
    }

    /// Infeasibility reported by an approximate pipeline.
    pub fn maybe_false_infeasible() -> Self {
        EngineError::Infeasible {
            possibly_false: true,
        }
    }

    /// `true` when the error denotes (possibly false) infeasibility.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, EngineError::Infeasible { .. })
    }

    /// `true` when the evaluation *failed* (as opposed to answering
    /// "infeasible", which is an answer).
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            EngineError::SolverGaveUp(_)
                | EngineError::Language(_)
                | EngineError::Relational(_)
                | EngineError::Unsupported(_)
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Infeasible {
                possibly_false: false,
            } => {
                write!(f, "the package query is infeasible")
            }
            EngineError::Infeasible {
                possibly_false: true,
            } => {
                write!(
                    f,
                    "the package query was reported infeasible (possibly falsely)"
                )
            }
            EngineError::Unbounded => write!(f, "the package objective is unbounded"),
            EngineError::SolverGaveUp(limit) => {
                write!(f, "the ILP solver gave up ({limit} exceeded)")
            }
            EngineError::Language(e) => write!(f, "{e}"),
            EngineError::Relational(e) => write!(f, "{e}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<paq_lang::PaqlError> for EngineError {
    fn from(e: paq_lang::PaqlError) -> Self {
        EngineError::Language(e)
    }
}

impl From<paq_relational::RelError> for EngineError {
    fn from(e: paq_relational::RelError) -> Self {
        EngineError::Relational(e)
    }
}

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(EngineError::infeasible().is_infeasible());
        assert!(!EngineError::infeasible().is_failure());
        assert!(EngineError::maybe_false_infeasible().is_infeasible());
        assert!(EngineError::SolverGaveUp(LimitKind::Memory).is_failure());
        assert!(!EngineError::Unbounded.is_failure());
    }

    #[test]
    fn display_mentions_limit() {
        let e = EngineError::SolverGaveUp(LimitKind::Time);
        assert!(e.to_string().contains("time limit"));
    }

    #[test]
    fn conversions() {
        let e: EngineError = paq_relational::RelError::DivisionByZero.into();
        assert!(matches!(e, EngineError::Relational(_)));
        let e: EngineError = paq_lang::PaqlError::Semantic("x".into()).into();
        assert!(matches!(e, EngineError::Language(_)));
    }
}
