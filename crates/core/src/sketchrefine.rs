//! SKETCHREFINE (§4 of the paper): scalable approximate evaluation.
//!
//! Given an offline [`Partitioning`] of the input into groups of similar
//! tuples, evaluation proceeds in two phases:
//!
//! * **SKETCH** (§4.2.1): solve the query over the *representative
//!   relation* `R̃` (one centroid tuple per group), with the extra
//!   global constraints `COUNT(p_S WHERE gid = j) ≤ |G_j|·(1+K)` capping
//!   every representative by its group size. The resulting ILP has only
//!   `m` variables.
//! * **REFINE** (§4.2.2, Algorithm 2): replace each group's
//!   representatives with actual tuples by solving a per-group ILP of at
//!   most τ variables whose constraint bounds are shifted by the
//!   contribution of every other group's current contents. Refinements
//!   are greedy; when one renders the remainder infeasible, the search
//!   **backtracks**, re-prioritizing the failed groups (lines 13–24 of
//!   Algorithm 2).
//!
//! On sketch infeasibility the evaluator falls back to the **hybrid
//! sketch query** of §4.4 (strategy 1, and the strategy used by the
//! paper's experiments): re-sketch with one group's original tuples
//! inlined, trying groups in order until one succeeds. Remaining
//! failures are reported as (possibly false) infeasibility.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use paq_exec::ThreadPool;
use paq_lang::{base_relation_rows, linear_system, LinearSystem, PackageQuery};
use paq_partition::partitioning::GID_COLUMN;
use paq_partition::{PartitionConfig, Partitioner, Partitioning};
use paq_relational::Table;
use paq_solver::{LimitKind, MilpSolver, Model, SolveOutcome, SolverConfig, Telemetry};

use crate::error::{EngineError, EngineResult};
use crate::package::Package;
use crate::Evaluator;

/// Tuning knobs for SKETCHREFINE.
#[derive(Debug, Clone)]
pub struct SketchRefineOptions {
    /// Use the hybrid sketch query (§4.4, strategy 1) when the plain
    /// sketch is infeasible. This matches the paper's experimental
    /// configuration.
    pub use_hybrid_sketch: bool,
    /// Budget on black-box solver calls across sketch + refine +
    /// backtracking; prevents the worst-case exponential ordering
    /// search (§4.2.2 "Run time complexity").
    pub max_solver_calls: u64,
    /// Default group count used by [`SketchRefine::evaluate`] when no
    /// partitioning is supplied (τ = n / default_groups).
    pub default_groups: usize,
    /// §4.4 strategy 2 (*further partitioning*): on a possibly-false
    /// infeasibility verdict, rebuild the partitioning with τ halved
    /// and retry, up to this many rounds. Requires the supplied
    /// partitioning to carry its attribute list.
    pub repartition_rounds: u32,
    /// §4.4 strategy 3 (*dropping partitioning attributes*): on a
    /// possibly-false infeasibility verdict, use the solver's
    /// IIS-style diagnostic from the failed sketch (which constraint
    /// rows cannot be satisfied) to identify the attributes involved,
    /// drop them from the partitioning attributes (merging groups along
    /// those dimensions), rebuild, and retry — up to this many rounds.
    pub drop_attribute_rounds: u32,
    /// §4.4 strategy 4 (*iterative group merging*): after any
    /// repartition rounds, merge groups pairwise and retry, up to this
    /// many rounds. Each round halves the group count, so the limit is
    /// the unpartitioned problem — which cannot be falsely infeasible.
    pub merge_rounds: u32,
    /// Cap on the sketch problem size (the paper's recursive-sketch
    /// device for very large `m`, §4.2.1): when the partitioning has
    /// more groups than this, spatially-adjacent groups are merged
    /// pairwise until the sketch ILP fits the cap.
    pub sketch_group_limit: Option<usize>,
    /// Overall time budget for one evaluation, covering the sketch,
    /// refine, and backtracking phases. `None` derives a default from
    /// the per-solve time limit: `(2·m + 4)×` for the sketch phase,
    /// then — once the sketch has revealed how many groups actually
    /// hold representatives — re-derived as `(2·pending + 4)×` for
    /// refine and backtracking, so sparse sketches don't inherit an
    /// inflated deadline.
    ///
    /// The budget is charged by **consumed** solves only (each capped
    /// at the per-solve time limit), mirroring the solver-call budget:
    /// speculative wave solves that are discarded are never charged,
    /// and a charge that would *expire* the budget is always
    /// re-measured by an uncontended inline re-solve first — so on an
    /// oversubscribed host, `threads > 1` cannot have contention-
    /// inflated wave measurements tip the verdict into possibly-false
    /// infeasibility on a budget the sequential schedule meets.
    /// (Consumed in-budget wave charges may still include bounded
    /// contention slack; only expiry decisions are contention-free.)
    /// On expiry the evaluation reports (possibly false) infeasibility,
    /// matching Algorithm 1's failure semantics.
    pub total_time_limit: Option<Duration>,
    /// Worker threads for **wave-based REFINE**: each wave snapshots
    /// the package's per-constraint contributions, speculatively solves
    /// pending group ILPs in parallel against that snapshot, and
    /// commits results sequentially in priority order, re-queuing any
    /// group whose committed predecessors shifted its bounds. `1`
    /// (the default) runs the classic sequential Algorithm 2 path;
    /// any setting produces the identical package: speculative results
    /// are only consumed when their bounds match exactly, and solves
    /// whose outcome depended on the solver's wall-clock limit are
    /// redone inline, uncontended — so the only residual variation is
    /// the time-limit nondeterminism sequential runs already have.
    pub threads: usize,
}

impl Default for SketchRefineOptions {
    fn default() -> Self {
        SketchRefineOptions {
            use_hybrid_sketch: true,
            max_solver_calls: 10_000,
            default_groups: 10,
            repartition_rounds: 0,
            drop_attribute_rounds: 0,
            merge_rounds: 0,
            sketch_group_limit: None,
            total_time_limit: None,
            threads: 1,
        }
    }
}

/// Work counters for one SKETCHREFINE evaluation.
#[derive(Debug, Clone, Default)]
pub struct SketchRefineReport {
    /// Wall-clock time in the SKETCH phase (including hybrid retries).
    pub sketch_time: Duration,
    /// Wall-clock time in the REFINE phase.
    pub refine_time: Duration,
    /// Total black-box solver invocations.
    pub solver_calls: u64,
    /// Number of backtracking events (failed refine subproblems).
    pub backtracks: u64,
    /// Whether the hybrid sketch fallback was used.
    pub used_hybrid: bool,
    /// Number of groups with at least one representative in the sketch
    /// package (the groups REFINE must process).
    pub groups_refined: usize,
    /// §4.4 strategy-2 retries performed (τ-halving repartitions).
    pub repartitions: u32,
    /// §4.4 strategy-3 retries performed (attribute drops guided by the
    /// sketch's infeasibility diagnostic).
    pub attribute_drops: u32,
    /// §4.4 strategy-4 retries performed (pairwise group merges).
    pub merges: u32,
    /// Parallel REFINE waves launched (0 on the sequential path).
    pub waves: u64,
    /// Per-group ILPs solved inside waves, including speculative solves
    /// whose results were later invalidated by a predecessor's commit.
    pub parallel_solves: u64,
    /// Speculative results discarded because a committed predecessor
    /// shifted the group's constraint bounds (the group was re-queued
    /// and re-solved in a later wave).
    pub conflict_requeues: u64,
}

impl SketchRefineReport {
    /// The wall-clock cost a cost-based router should attribute to this
    /// SKETCHREFINE execution: sketch plus refine time. Partitioning
    /// build time is deliberately excluded — the paper treats it as a
    /// one-time offline cost amortized across queries (§4.1), and the
    /// planner's cache makes warm executions skip it entirely.
    pub fn observed_cost(&self) -> Duration {
        self.sketch_time + self.refine_time
    }
}

/// The SKETCHREFINE evaluator.
#[derive(Debug, Clone, Default)]
pub struct SketchRefine {
    config: SolverConfig,
    options: SketchRefineOptions,
    telemetry: Option<Arc<Telemetry>>,
    pool: Option<Arc<ThreadPool>>,
}

impl SketchRefine {
    /// SKETCHREFINE with a specific solver configuration.
    pub fn new(config: SolverConfig) -> Self {
        SketchRefine {
            config,
            options: SketchRefineOptions::default(),
            telemetry: None,
            pool: None,
        }
    }

    /// Override options.
    pub fn with_options(mut self, options: SketchRefineOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach shared telemetry.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Share an existing worker pool for wave-based REFINE instead of
    /// spawning one per evaluation from [`SketchRefineOptions::threads`].
    /// A single-worker pool (like `threads = 1`) runs the sequential
    /// path.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool wave-based REFINE should use, if any: a shared pool
    /// when one was attached, otherwise an evaluation-scoped pool of
    /// [`SketchRefineOptions::threads`] workers. `None` means run the
    /// sequential Algorithm 2 path (the two are package-identical; the
    /// pool only changes how the per-group ILPs are scheduled).
    fn refine_pool(&self) -> Option<Arc<ThreadPool>> {
        match &self.pool {
            Some(pool) if pool.threads() > 1 => Some(Arc::clone(pool)),
            Some(_) => None,
            None if self.options.threads > 1 => {
                Some(Arc::new(ThreadPool::new(self.options.threads)))
            }
            None => None,
        }
    }

    /// Evaluate against a prebuilt offline partitioning.
    pub fn evaluate_with(
        &self,
        query: &PackageQuery,
        table: &Table,
        partitioning: &Partitioning,
    ) -> EngineResult<Package> {
        self.evaluate_with_report(query, table, partitioning)
            .map(|(p, _)| p)
    }

    /// Evaluate against a prebuilt partitioning, returning work
    /// counters alongside the package.
    ///
    /// On a possibly-false infeasibility verdict this applies the
    /// configured §4.4 fallback ladder: first τ-halving repartitions
    /// (strategy 2), then pairwise group merges (strategy 4).
    pub fn evaluate_with_report(
        &self,
        query: &PackageQuery,
        table: &Table,
        partitioning: &Partitioning,
    ) -> EngineResult<(Package, SketchRefineReport)> {
        crate::binding::check_table_binding(query, table)?;

        // Recursive-sketch device: coarsen an oversized partitioning
        // before the first attempt.
        let mut current = self.coarsen(partitioning, table)?;
        // One pool outlives every §4.4 ladder attempt.
        let pool = self.refine_pool();
        let mut repartitions = 0u32;
        let mut attribute_drops = 0u32;
        let mut merges = 0u32;
        loop {
            let (attempt, violated_rows) = {
                let p = current
                    .as_ref()
                    .map(|c| c as &Partitioning)
                    .unwrap_or(partitioning);
                let mut session = Session::new(self, query, table, p, pool.clone())?;
                let attempt = session.run();
                (attempt, session.sketch_violated_rows.clone())
            };
            match attempt {
                Ok((pkg, mut report)) => {
                    report.repartitions = repartitions;
                    report.attribute_drops = attribute_drops;
                    report.merges = merges;
                    return Ok((pkg, report));
                }
                Err(EngineError::Infeasible {
                    possibly_false: true,
                }) => {
                    let active = current.as_ref().unwrap_or(partitioning);
                    if repartitions < self.options.repartition_rounds
                        && !active.attributes.is_empty()
                        && active.max_group_size() > 1
                    {
                        // Strategy 2: further partitioning (halve τ).
                        let tau = (active.max_group_size() / 2).max(1);
                        let rebuilt = build_partitioning(
                            PartitionConfig::by_size(active.attributes.clone(), tau),
                            table,
                            pool.as_deref(),
                        )?;
                        current = Some(rebuilt);
                        repartitions += 1;
                    } else if attribute_drops < self.options.drop_attribute_rounds
                        && active.attributes.len() > 1
                    {
                        // Strategy 3: drop the partitioning attributes
                        // implicated by the sketch's infeasibility
                        // diagnostic — groups merge along those
                        // dimensions, increasing the odds that the
                        // previously unreachable combination appears.
                        let implicated = implicated_attributes(query, &violated_rows);
                        let mut kept: Vec<String> = active
                            .attributes
                            .iter()
                            .filter(|a| !implicated.contains(*a))
                            .cloned()
                            .collect();
                        if kept.is_empty() || kept.len() == active.attributes.len() {
                            // Diagnostic unusable: drop the *last*
                            // attribute as a deterministic fallback.
                            kept = active.attributes[..active.attributes.len() - 1].to_vec();
                        }
                        let tau = active.max_group_size().max(1);
                        let rebuilt = build_partitioning(
                            PartitionConfig::by_size(kept, tau),
                            table,
                            pool.as_deref(),
                        )?;
                        current = Some(rebuilt);
                        attribute_drops += 1;
                    } else if merges < self.options.merge_rounds && active.num_groups() > 1 {
                        // Strategy 4: iterative group merging.
                        current = Some(active.merged_pairwise(table)?);
                        merges += 1;
                    } else {
                        return Err(EngineError::maybe_false_infeasible());
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Apply the sketch-group-size cap by pairwise merging (the
    /// recursive-sketch device of §4.2.1). Returns `None` when no
    /// coarsening is needed.
    fn coarsen(
        &self,
        partitioning: &Partitioning,
        table: &Table,
    ) -> EngineResult<Option<Partitioning>> {
        let Some(limit) = self.options.sketch_group_limit else {
            return Ok(None);
        };
        if partitioning.num_groups() <= limit.max(1) {
            return Ok(None);
        }
        let mut current = partitioning.merged_pairwise(table)?;
        while current.num_groups() > limit.max(1) && current.num_groups() > 1 {
            current = current.merged_pairwise(table)?;
        }
        Ok(Some(current))
    }

    fn solver(&self) -> MilpSolver {
        let s = MilpSolver::new(self.config.clone());
        match &self.telemetry {
            Some(t) => s.with_telemetry(Arc::clone(t)),
            None => s,
        }
    }
}

impl Evaluator for SketchRefine {
    fn name(&self) -> &'static str {
        "SKETCHREFINE"
    }

    /// Convenience entry point: builds an on-the-fly partitioning on
    /// the query attributes with τ = n / `default_groups` (no radius
    /// condition), then evaluates. Production use should prebuild the
    /// partitioning offline (§4.1 "One-time cost").
    fn evaluate(&self, query: &PackageQuery, table: &Table) -> EngineResult<Package> {
        let mut attrs = query.query_attributes();
        if attrs.is_empty() {
            attrs = table
                .schema()
                .numeric_names()
                .into_iter()
                .map(str::to_owned)
                .collect();
        }
        if attrs.is_empty() {
            return Err(EngineError::Unsupported(
                "SKETCHREFINE needs at least one numeric attribute to partition on".into(),
            ));
        }
        let tau = (table.num_rows() / self.options.default_groups.max(1)).max(2);
        let partitioning =
            Partitioner::new(PartitionConfig::by_size(attrs, tau)).partition(table)?;
        self.evaluate_with(query, table, &partitioning)
    }
}

/// A group after base-predicate filtering.
struct EffGroup {
    /// Qualifying row indices.
    rows: Vec<usize>,
}

/// Per-group refinement record: chosen tuples plus their contribution
/// to each constraint row (and the contribution the representative used
/// to make, for undo).
struct Refined {
    pairs: Vec<(usize, u64)>,
    contrib: Vec<f64>,
}

struct Session<'a> {
    engine: &'a SketchRefine,
    query: &'a PackageQuery,
    /// Query with the WHERE clause stripped (rows are pre-filtered).
    stripped: PackageQuery,
    table: &'a Table,
    groups: Vec<EffGroup>,
    /// Linear system over the representative relation (one row per
    /// group, aligned with `groups`).
    rep_system: LinearSystem,
    /// Representative multiplicities from the sketch solution.
    rep_mult: Vec<u64>,
    /// Refinement state per group.
    refined: Vec<Option<Refined>>,
    /// Current total contribution of all groups to each constraint row.
    totals: Vec<f64>,
    report: SketchRefineReport,
    solver: MilpSolver,
    /// Time budget for this evaluation, charged by *consumed* solves
    /// only (see [`SketchRefineOptions::total_time_limit`]).
    time_budget: Duration,
    /// Solve time charged against [`Session::time_budget`] so far.
    /// Discarded speculative wave solves are never charged, so the
    /// budget expires on the same consumed-solve sequence at any
    /// thread count.
    consumed: Duration,
    /// Constraint rows the plain sketch could not satisfy (the solver's
    /// IIS-style diagnostic), captured for §4.4 strategy 3.
    sketch_violated_rows: Vec<u32>,
    /// Worker pool for wave-based REFINE; `None` = sequential path.
    pool: Option<Arc<ThreadPool>>,
    /// Speculative per-group solve results from past waves, keyed by
    /// group and validated lazily against the offsets they were solved
    /// with. Backtracking's `undo` can even revalidate a stale entry.
    speculative: HashMap<usize, Speculative>,
    /// Adaptive wave width: grows while commits keep speculation valid
    /// (constraints that don't couple groups), collapses back to the
    /// thread count as soon as a commit invalidates a sibling — so
    /// conflict-free workloads pay few synchronization barriers and
    /// conflict-heavy ones waste at most one small wave per commit.
    wave_width: usize,
    /// `conflict_requeues` as of the last wave launch, for the width
    /// adaptation above.
    last_wave_conflicts: u64,
}

/// A wave-solved refinement with the constraint offsets it assumed and
/// the wall-clock its solve took (charged to the time budget only if
/// the result is consumed).
struct Speculative {
    offsets: Vec<f64>,
    result: EngineResult<GroupSolve>,
    elapsed: Duration,
}

/// Result of one refine-subproblem solve.
enum GroupSolve {
    /// An outcome that is a pure function of the model (optimal,
    /// gap/node/iteration/memory-limited, or infeasible): safe to
    /// consume speculatively, because a re-solve would reproduce it.
    Done(Option<Refined>),
    /// The solver's *wall-clock* limit fired. Under wave contention a
    /// subproblem can exceed the limit that an uncontended sequential
    /// solve would meet (or cut a different incumbent), so this outcome
    /// must not be consumed speculatively — the driver redoes the solve
    /// inline, uncontended, exactly like the sequential schedule.
    TimeLimited(Option<Refined>),
}

impl GroupSolve {
    /// The refinement regardless of how the solve terminated (the
    /// sequential path accepts whatever the uncontended solve produced).
    fn into_inner(self) -> Option<Refined> {
        match self {
            GroupSolve::Done(r) | GroupSolve::TimeLimited(r) => r,
        }
    }
}

impl<'a> Session<'a> {
    fn new(
        engine: &'a SketchRefine,
        query: &'a PackageQuery,
        table: &'a Table,
        partitioning: &Partitioning,
        pool: Option<Arc<ThreadPool>>,
    ) -> EngineResult<Self> {
        // Base-predicate filtering per group (the paper pre-processes
        // base predicates with a standard SQL query, §5.1).
        let mut groups = Vec::new();
        for g in &partitioning.groups {
            let rows = base_relation_rows(query, table, &g.rows)?;
            if !rows.is_empty() {
                groups.push(EffGroup { rows });
            }
        }

        let mut stripped = query.clone();
        stripped.where_clause = None;

        // Representative relation over the *filtered* groups: group
        // means of every query attribute (this also covers partitionings
        // whose attributes differ from the query's — §5.2.3).
        let eff_partitioning = Partitioning {
            attributes: Vec::new(),
            groups: groups
                .iter()
                .enumerate()
                .map(|(j, g)| paq_partition::Group {
                    gid: j as i64 + 1,
                    rows: g.rows.clone(),
                    representative: Vec::new(),
                    radius: 0.0,
                })
                .collect(),
            build_time: Duration::ZERO,
        };
        let mut attrs = query.query_attributes();
        attrs.retain(|a| a != GID_COLUMN);
        let rep_table = eff_partitioning.representative_table(table, &attrs)?;
        let rep_rows: Vec<usize> = (0..rep_table.num_rows()).collect();
        let rep_system = linear_system(&stripped, &rep_table, &rep_rows)?;

        let num_rows = rep_system.rows.len();
        // Provisional budget covering the sketch phase; `run`
        // re-derives the default from the *pending* group count once
        // the sketch shows which groups actually need refinement.
        let time_budget = engine.options.total_time_limit.unwrap_or_else(|| {
            engine
                .config
                .time_limit
                .saturating_mul(2 * groups.len() as u32 + 4)
        });
        Ok(Session {
            engine,
            query,
            stripped,
            table,
            rep_mult: vec![0; groups.len()],
            refined: groups.iter().map(|_| None).collect(),
            groups,
            rep_system,
            totals: vec![0.0; num_rows],
            report: SketchRefineReport::default(),
            solver: engine.solver(),
            time_budget,
            consumed: Duration::ZERO,
            sketch_violated_rows: Vec::new(),
            wave_width: pool.as_ref().map_or(1, |p| 2 * p.threads()),
            pool,
            speculative: HashMap::new(),
            last_wave_conflicts: 0,
        })
    }

    fn run(&mut self) -> EngineResult<(Package, SketchRefineReport)> {
        let sketch_span = paq_obs::span("sketch");
        let sketch_started = Instant::now();
        self.sketch()?;
        self.report.sketch_time = sketch_started.elapsed();
        drop(sketch_span);

        let refine_started = Instant::now();
        let remaining: BTreeSet<usize> = (0..self.groups.len())
            .filter(|&j| self.rep_mult[j] > 0 && self.refined[j].is_none())
            .collect();
        self.report.groups_refined = remaining.len();
        // Re-derive the default budget from the work that is actually
        // left: one budgeted solve per *pending* group plus backtracking
        // slack, so a sparse sketch (few groups holding representatives)
        // doesn't keep the inflated `2·m + 4` budget of the full
        // partitioning. The sketch phase's charge is dropped with it
        // (a fresh budget, like the fresh deadline it replaces); an
        // explicit `total_time_limit` instead keeps accumulating across
        // phases.
        if self.engine.options.total_time_limit.is_none() {
            self.time_budget = self
                .engine
                .config
                .time_limit
                .saturating_mul(2 * remaining.len() as u32 + 4);
            self.consumed = Duration::ZERO;
        }
        let order: Vec<usize> = remaining.iter().copied().collect();
        let outcome = self.refine_rec(&remaining, &order, 0);
        self.report.refine_time = refine_started.elapsed();
        match outcome {
            Ok(()) => {
                let mut pairs = Vec::new();
                for r in self.refined.iter().flatten() {
                    pairs.extend_from_slice(&r.pairs);
                }
                Ok((Package::from_pairs(pairs), self.report.clone()))
            }
            Err(RefineFail::Budget) => Err(EngineError::maybe_false_infeasible()),
            Err(RefineFail::Failed(_)) => Err(EngineError::maybe_false_infeasible()),
            Err(RefineFail::Fatal(e)) => Err(e),
        }
    }

    /// Charge one consumed solve's wall-clock against the time budget.
    /// The charge is capped at the per-solve time limit: a contended
    /// wave solve that still finished under the solver's own limit must
    /// not be charged more than the sequential schedule could ever be.
    fn charge(&mut self, elapsed: Duration) {
        self.consumed += elapsed.min(self.engine.config.time_limit);
    }

    /// `true` once consumed solves have exhausted the time budget.
    fn out_of_time(&self) -> bool {
        self.consumed > self.time_budget
    }

    // ------------------------------------------------------------------
    // SKETCH
    // ------------------------------------------------------------------

    /// Per-representative usage cap: `|G_j|·(1+K)` with `REPEAT K`,
    /// unbounded otherwise (§4.2.1).
    fn rep_cap(&self, j: usize) -> f64 {
        match self.query.max_multiplicity() {
            Some(m) => (self.groups[j].rows.len() as u64 * m) as f64,
            None => f64::INFINITY,
        }
    }

    fn sketch(&mut self) -> EngineResult<()> {
        // Plain sketch: variables = representatives with group-size caps.
        let mut model = Model::new();
        let vars: Vec<paq_solver::VarId> = (0..self.groups.len())
            .map(|j| model.add_int_var(0.0, self.rep_cap(j), self.rep_system.objective[j]))
            .collect();
        for row in &self.rep_system.rows {
            model.add_range(
                vars.iter()
                    .copied()
                    .zip(row.coefs.iter().copied())
                    .collect(),
                row.lo,
                row.hi,
            );
        }
        model.set_sense(self.rep_system.sense);

        self.report.solver_calls += 1;
        let solve_start = Instant::now();
        let result = self.solver.solve(&model);
        self.charge(solve_start.elapsed());
        self.sketch_violated_rows = result.stats.root_infeasible_rows.clone();
        match result.outcome {
            SolveOutcome::Optimal(sol) | SolveOutcome::Feasible { best: sol, .. } => {
                for j in 0..self.groups.len() {
                    self.rep_mult[j] = sol.values[j].round().max(0.0) as u64;
                }
                self.recompute_totals();
                Ok(())
            }
            SolveOutcome::Unbounded => Err(EngineError::Unbounded),
            // A choking sketch gets the same fallback as an infeasible
            // one: the hybrid variants restructure the problem and are
            // often easier for the black box.
            SolveOutcome::ResourceExhausted(_) | SolveOutcome::Infeasible => {
                if self.engine.options.use_hybrid_sketch {
                    self.hybrid_sketch()
                } else {
                    Err(EngineError::maybe_false_infeasible())
                }
            }
        }
    }

    /// Hybrid sketch (§4.4, strategy 1): inline one group's original
    /// tuples next to the other groups' representatives; try groups in
    /// order until one such query is feasible.
    fn hybrid_sketch(&mut self) -> EngineResult<()> {
        self.report.used_hybrid = true;
        for inlined in 0..self.groups.len() {
            if self.report.solver_calls >= self.engine.options.max_solver_calls
                || self.out_of_time()
            {
                return Err(EngineError::maybe_false_infeasible());
            }
            let group_system =
                linear_system(&self.stripped, self.table, &self.groups[inlined].rows)?;
            let mut model = Model::new();
            // Original tuples of the inlined group...
            let tuple_vars: Vec<paq_solver::VarId> = group_system
                .objective
                .iter()
                .map(|&c| model.add_int_var(0.0, group_system.var_ub, c))
                .collect();
            // ...plus representatives of every other group.
            let rep_vars: Vec<Option<paq_solver::VarId>> = (0..self.groups.len())
                .map(|j| {
                    (j != inlined).then(|| {
                        model.add_int_var(0.0, self.rep_cap(j), self.rep_system.objective[j])
                    })
                })
                .collect();
            for (r, row) in self.rep_system.rows.iter().enumerate() {
                let mut terms: Vec<(paq_solver::VarId, f64)> = tuple_vars
                    .iter()
                    .copied()
                    .zip(group_system.rows[r].coefs.iter().copied())
                    .collect();
                for (j, v) in rep_vars.iter().enumerate() {
                    if let Some(v) = v {
                        terms.push((*v, row.coefs[j]));
                    }
                }
                model.add_range(terms, row.lo, row.hi);
            }
            model.set_sense(self.rep_system.sense);

            self.report.solver_calls += 1;
            let solve_start = Instant::now();
            let outcome = self.solver.solve(&model).outcome;
            self.charge(solve_start.elapsed());
            match outcome {
                SolveOutcome::Optimal(sol) | SolveOutcome::Feasible { best: sol, .. } => {
                    // The inlined group is immediately refined.
                    let pairs: Vec<(usize, u64)> = self.groups[inlined]
                        .rows
                        .iter()
                        .zip(&sol.values[..tuple_vars.len()])
                        .filter_map(|(&row, &v)| {
                            let m = v.round() as i64;
                            (m > 0).then_some((row, m as u64))
                        })
                        .collect();
                    let contrib = contribution(&group_system, &self.groups[inlined].rows, &pairs);
                    self.refined[inlined] = Some(Refined { pairs, contrib });
                    self.rep_mult[inlined] = 0;
                    let mut vi = tuple_vars.len();
                    for (j, v) in rep_vars.iter().enumerate() {
                        if v.is_some() {
                            self.rep_mult[j] = sol.values[vi].round().max(0.0) as u64;
                            vi += 1;
                        }
                    }
                    self.recompute_totals();
                    return Ok(());
                }
                SolveOutcome::Unbounded => return Err(EngineError::Unbounded),
                // A choking hybrid subproblem is treated like an
                // infeasible one: try inlining a different group.
                SolveOutcome::ResourceExhausted(_) | SolveOutcome::Infeasible => continue,
            }
        }
        Err(EngineError::maybe_false_infeasible())
    }

    /// Recompute `totals[r]` = contribution of the full current state
    /// (refined tuples + representative multiplicities) to row `r`.
    fn recompute_totals(&mut self) {
        let m = self.rep_system.rows.len();
        self.totals = vec![0.0; m];
        for (r, row) in self.rep_system.rows.iter().enumerate() {
            for j in 0..self.groups.len() {
                match &self.refined[j] {
                    Some(refined) => self.totals[r] += refined.contrib[r],
                    None => self.totals[r] += row.coefs[j] * self.rep_mult[j] as f64,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // REFINE (Algorithm 2)
    // ------------------------------------------------------------------

    fn refine_rec(
        &mut self,
        remaining: &BTreeSet<usize>,
        order: &[usize],
        depth: u32,
    ) -> Result<(), RefineFail> {
        if remaining.is_empty() {
            return Ok(());
        }
        let mut failed: BTreeSet<usize> = BTreeSet::new();
        // Priority queue: failed groups first, then the inherited order.
        let mut pending: Vec<usize> = order
            .iter()
            .copied()
            .filter(|j| remaining.contains(j))
            .collect();

        while let Some(j) = pending.first().copied() {
            pending.remove(0);
            if self.report.solver_calls >= self.engine.options.max_solver_calls
                || self.out_of_time()
            {
                return Err(RefineFail::Budget);
            }
            match self.obtain_refine(j, &pending)? {
                None => {
                    // Q[G_j] infeasible.
                    self.report.backtracks += 1;
                    failed.insert(j);
                    if depth > 0 {
                        // Greedily backtrack with the non-refinable group
                        // (Algorithm 2, lines 14–17).
                        return Err(RefineFail::Failed(failed));
                    }
                    // At the root (S = P) keep trying other first groups.
                    continue;
                }
                Some(refined) => {
                    let undo = self.apply(j, refined);
                    let mut rest = remaining.clone();
                    rest.remove(&j);
                    let child_order: Vec<usize> = {
                        // Prioritize previously-failed groups (line 24).
                        let mut o: Vec<usize> = failed
                            .iter()
                            .copied()
                            .filter(|g| rest.contains(g))
                            .collect();
                        o.extend(
                            order
                                .iter()
                                .copied()
                                .filter(|g| rest.contains(g) && !failed.contains(g)),
                        );
                        o
                    };
                    match self.refine_rec(&rest, &child_order, depth + 1) {
                        Ok(()) => return Ok(()),
                        Err(RefineFail::Failed(f)) => {
                            self.undo(j, undo);
                            failed.extend(f.iter().copied());
                            // Re-prioritize the local queue: failed
                            // groups first (stable within each class).
                            pending.sort_by_key(|g| !failed.contains(g));
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
        }
        // None of the groups in S can be refined first (invariant F = S).
        Err(RefineFail::Failed(failed))
    }

    /// Constraint-bound offsets for group `j`'s refine query: per row,
    /// the contribution of all *other* groups' current contents.
    fn group_offsets(&self, j: usize) -> Vec<f64> {
        self.rep_system
            .rows
            .iter()
            .enumerate()
            .map(|(r, row)| {
                let own = match &self.refined[j] {
                    Some(refined) => refined.contrib[r],
                    None => row.coefs[j] * self.rep_mult[j] as f64,
                };
                self.totals[r] - own
            })
            .collect()
    }

    /// Produce the result of the refine query `Q[G_j]` the sequential
    /// Algorithm 2 would solve *right now*, either by solving it inline
    /// (no pool) or by consuming a wave-solved speculative result.
    ///
    /// The wave path snapshots the current offsets, solves `j` plus up
    /// to `threads − 1` of the `upcoming` pending groups in parallel,
    /// and caches everything. A cached result is only consumed when the
    /// offsets it was solved against still match exactly — the model,
    /// and therefore the deterministic solver's answer, is then
    /// identical to the sequential solve — otherwise the entry is
    /// discarded as a conflict re-queue and the group re-solved in a
    /// fresh wave. Budget accounting (`solver_calls`) charges exactly
    /// the consumed solves, mirroring the sequential call sequence;
    /// speculative overshoot is reported separately.
    fn obtain_refine(
        &mut self,
        j: usize,
        upcoming: &[usize],
    ) -> Result<Option<Refined>, RefineFail> {
        let Some(pool) = self.pool.clone() else {
            let offsets = self.group_offsets(j);
            return self.solve_inline(j, &offsets);
        };

        let offsets = self.group_offsets(j);
        if let Some(spec) = self.speculative.remove(&j) {
            if spec.offsets == offsets {
                return self.consume(j, &offsets, spec.result, spec.elapsed);
            }
            // A committed predecessor shifted this group's bounds since
            // the wave that solved it: the speculation is void.
            self.report.conflict_requeues += 1;
        }

        // Adapt the wave width: conflict-free progress doubles it (up
        // to 16× the thread count), any conflict since the last wave
        // collapses it to the thread count.
        let threads = pool.threads();
        self.wave_width = if self.report.conflict_requeues == self.last_wave_conflicts {
            (self.wave_width * 2).clamp(2 * threads, 16 * threads)
        } else {
            threads
        };

        // Launch a wave: group `j` plus the next pending groups that
        // lack a still-valid speculative result.
        let mut targets: Vec<(usize, Vec<f64>)> = vec![(j, offsets.clone())];
        for &g in upcoming {
            if targets.len() >= self.wave_width {
                break;
            }
            let off = self.group_offsets(g);
            let valid = self
                .speculative
                .get(&g)
                .is_some_and(|spec| spec.offsets == off);
            if !valid {
                targets.push((g, off));
            }
        }
        self.report.waves += 1;
        self.report.parallel_solves += targets.len() as u64;

        let mut slots: Vec<Option<(EngineResult<GroupSolve>, Duration)>> =
            Vec::with_capacity(targets.len());
        slots.resize_with(targets.len(), || None);
        {
            // The wave span lives on the coordinating thread (workers
            // have no ambient obs context), so span capture stays off
            // the deterministic solve path.
            let _wave_span = paq_obs::span("refine.wave");
            let solver = &self.solver;
            let stripped = &self.stripped;
            let table = self.table;
            let groups = &self.groups;
            pool.scope(|scope| {
                for ((g, off), slot) in targets.iter().zip(slots.iter_mut()) {
                    scope.spawn(move || {
                        let solve_start = Instant::now();
                        let result = solve_group(solver, stripped, table, &groups[*g].rows, off);
                        *slot = Some((result, solve_start.elapsed()));
                    });
                }
            });
        }
        let commit_span = paq_obs::span("refine.commit");
        for ((g, off), slot) in targets.into_iter().zip(slots) {
            let (result, elapsed) = slot.expect("wave completed every solve");
            let stale = self.speculative.insert(
                g,
                Speculative {
                    offsets: off,
                    result,
                    elapsed,
                },
            );
            if stale.is_some() {
                // Replaced an entry whose offsets no longer matched.
                self.report.conflict_requeues += 1;
            }
        }

        drop(commit_span);

        self.last_wave_conflicts = self.report.conflict_requeues;

        let spec = self
            .speculative
            .remove(&j)
            .expect("wave solved the requested group");
        self.consume(j, &offsets, spec.result, spec.elapsed)
    }

    /// Consume a wave result for group `j` whose offsets matched:
    /// model-determined outcomes are used as-is; time-limited outcomes
    /// are redone inline and uncontended (workers are idle between
    /// waves), the same conditions the sequential schedule solves under.
    /// Only the consumed solve is charged to the time budget.
    fn consume(
        &mut self,
        j: usize,
        offsets: &[f64],
        result: EngineResult<GroupSolve>,
        elapsed: Duration,
    ) -> Result<Option<Refined>, RefineFail> {
        match result {
            Ok(GroupSolve::Done(r)) => {
                // A wave measurement on an oversubscribed host includes
                // preemption time, so it can be inflated well past the
                // uncontended cost. Accumulating inflated-but-in-budget
                // charges is harmless slack, but budget *expiry* must
                // never be decided on one: if this charge would cross
                // the budget, redo the solve inline — uncontended,
                // workers idle between waves — and charge that instead
                // (the deterministic solver reproduces the result, as
                // on the `TimeLimited` path).
                let charge = elapsed.min(self.engine.config.time_limit);
                if self.consumed + charge > self.time_budget {
                    return self.solve_inline(j, offsets);
                }
                self.report.solver_calls += 1;
                self.consumed += charge;
                Ok(r)
            }
            Ok(GroupSolve::TimeLimited(_)) => self.solve_inline(j, offsets),
            Err(e) => {
                self.report.solver_calls += 1;
                self.charge(elapsed);
                Err(e.into())
            }
        }
    }

    /// One budgeted, uncontended solve on the driver thread — the exact
    /// call the sequential Algorithm 2 path makes.
    fn solve_inline(&mut self, j: usize, offsets: &[f64]) -> Result<Option<Refined>, RefineFail> {
        self.report.solver_calls += 1;
        let solve_start = Instant::now();
        let result = solve_group(
            &self.solver,
            &self.stripped,
            self.table,
            &self.groups[j].rows,
            offsets,
        );
        self.charge(solve_start.elapsed());
        result.map(GroupSolve::into_inner).map_err(RefineFail::from)
    }

    /// Install a refinement, returning the undo record.
    fn apply(&mut self, j: usize, refined: Refined) -> UndoRecord {
        let old_mult = self.rep_mult[j];
        let old_refined = self.refined[j].take();
        for (r, row) in self.rep_system.rows.iter().enumerate() {
            let before = match &old_refined {
                Some(old) => old.contrib[r],
                None => row.coefs[j] * old_mult as f64,
            };
            self.totals[r] += refined.contrib[r] - before;
        }
        self.rep_mult[j] = 0;
        self.refined[j] = Some(refined);
        UndoRecord {
            old_mult,
            old_refined,
        }
    }

    /// Roll back a refinement installed by [`Session::apply`].
    fn undo(&mut self, j: usize, undo: UndoRecord) {
        let new = self.refined[j].take().expect("undo of an unapplied group");
        for (r, row) in self.rep_system.rows.iter().enumerate() {
            let before = match &undo.old_refined {
                Some(old) => old.contrib[r],
                None => row.coefs[j] * undo.old_mult as f64,
            };
            self.totals[r] += before - new.contrib[r];
        }
        self.rep_mult[j] = undo.old_mult;
        self.refined[j] = undo.old_refined;
    }
}

struct UndoRecord {
    old_mult: u64,
    old_refined: Option<Refined>,
}

enum RefineFail {
    /// Backtracking failure carrying the non-refinable groups.
    Failed(BTreeSet<usize>),
    /// Solver-call budget exhausted.
    Budget,
    /// Hard error (solver resource failure, unbounded, substrate error).
    Fatal(EngineError),
}

impl From<EngineError> for RefineFail {
    fn from(e: EngineError) -> Self {
        RefineFail::Fatal(e)
    }
}

/// Attributes referenced by the global predicates behind the given
/// constraint-row indices. Row numbering mirrors
/// [`paq_lang::linear_system`]: one row per predicate, except an AVG
/// `BETWEEN`, which expands to two.
fn implicated_attributes(query: &PackageQuery, rows: &[u32]) -> Vec<String> {
    use paq_lang::ast::{AggExpr, AggTerm, GlobalPredicate};
    let mut row_attrs: Vec<Vec<String>> = Vec::new();
    for pred in &query.such_that {
        match pred {
            GlobalPredicate::Between { agg, .. } => {
                let attrs = agg.referenced_attributes();
                if matches!(agg, AggExpr::Avg(_)) {
                    row_attrs.push(attrs.clone()); // lo row
                }
                row_attrs.push(attrs); // hi / single row
            }
            GlobalPredicate::Cmp { lhs, rhs, .. } => {
                let mut attrs = Vec::new();
                for side in [lhs, rhs] {
                    if let AggTerm::Agg(a) = side {
                        attrs.extend(a.referenced_attributes());
                    }
                }
                attrs.sort();
                attrs.dedup();
                row_attrs.push(attrs);
            }
        }
    }
    let mut out: Vec<String> = rows
        .iter()
        .filter_map(|&r| row_attrs.get(r as usize))
        .flatten()
        .cloned()
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Build a partitioning, on the pool when one is available (identical
/// output either way; see `Partitioner::partition_with_pool`).
fn build_partitioning(
    config: PartitionConfig,
    table: &Table,
    pool: Option<&ThreadPool>,
) -> EngineResult<Partitioning> {
    let partitioner = Partitioner::new(config);
    Ok(match pool {
        Some(pool) => partitioner.partition_with_pool(table, pool)?,
        None => partitioner.partition(table)?,
    })
}

/// Solve the refine query `Q[G_j]`: pick actual tuples from `rows`
/// (group `j` after base-predicate filtering) such that, with every
/// constraint bound shifted by `offsets[r]` — the contribution of all
/// *other* groups' current contents (`p̄_j`) — all global constraints
/// hold. Returns `None` on infeasibility, and also when the black box
/// chokes on the subproblem: the group is then non-refinable *in this
/// order* and the greedy backtracking tries a different ordering — a
/// different `p̄_j` often yields an easier subproblem. (If every
/// ordering fails, the budget/ladder logic in
/// `run`/`evaluate_with_report` takes over.)
///
/// This is a pure function of its inputs plus the deterministic solver
/// — except when the solver's *wall-clock* limit fires, which the
/// [`GroupSolve::TimeLimited`] variant flags so the wave engine never
/// consumes a contention-skewed outcome speculatively.
fn solve_group(
    solver: &MilpSolver,
    stripped: &PackageQuery,
    table: &Table,
    rows: &[usize],
    offsets: &[f64],
) -> EngineResult<GroupSolve> {
    let system = linear_system(stripped, table, rows)?;
    let mut model = Model::new();
    let vars: Vec<paq_solver::VarId> = system
        .objective
        .iter()
        .map(|&c| model.add_int_var(0.0, system.var_ub, c))
        .collect();
    for (r, row) in system.rows.iter().enumerate() {
        let offset = offsets[r];
        let lo = if row.lo.is_finite() {
            row.lo - offset
        } else {
            row.lo
        };
        let hi = if row.hi.is_finite() {
            row.hi - offset
        } else {
            row.hi
        };
        model.add_range(
            vars.iter()
                .copied()
                .zip(row.coefs.iter().copied())
                .collect(),
            lo,
            hi,
        );
    }
    model.set_sense(system.sense);

    let refined = |sol: &paq_solver::Solution| {
        let pairs: Vec<(usize, u64)> = rows
            .iter()
            .zip(&sol.values)
            .filter_map(|(&row, &v)| {
                let m = v.round() as i64;
                (m > 0).then_some((row, m as u64))
            })
            .collect();
        let contrib = contribution(&system, rows, &pairs);
        Refined { pairs, contrib }
    };
    match solver.solve(&model).outcome {
        SolveOutcome::Optimal(sol) => Ok(GroupSolve::Done(Some(refined(&sol)))),
        // Gap/node/iteration/memory cutoffs are deterministic counters;
        // only the wall-clock cutoff can differ between a contended
        // wave solve and the sequential schedule.
        SolveOutcome::Feasible {
            best: sol,
            limit: LimitKind::Time,
            ..
        } => Ok(GroupSolve::TimeLimited(Some(refined(&sol)))),
        SolveOutcome::Feasible { best: sol, .. } => Ok(GroupSolve::Done(Some(refined(&sol)))),
        SolveOutcome::Infeasible => Ok(GroupSolve::Done(None)),
        SolveOutcome::ResourceExhausted(LimitKind::Time) => Ok(GroupSolve::TimeLimited(None)),
        SolveOutcome::ResourceExhausted(_) => Ok(GroupSolve::Done(None)),
        // A refine subproblem of a bounded sketch can only be unbounded
        // if the query itself is unbounded.
        SolveOutcome::Unbounded => Err(EngineError::Unbounded),
    }
}

/// Contribution of chosen `(row, mult)` pairs to each constraint row of
/// `system` (whose coefficients are indexed by position within `rows`).
fn contribution(system: &LinearSystem, rows: &[usize], pairs: &[(usize, u64)]) -> Vec<f64> {
    // Resolve each pair's coefficient slot once, not per constraint
    // row: a linear scan per (row × pair) made this quadratic-ish in
    // the group size τ.
    let slot_of: HashMap<usize, usize> = rows
        .iter()
        .enumerate()
        .map(|(slot, &row)| (row, slot))
        .collect();
    let slots: Vec<usize> = pairs
        .iter()
        .map(|&(tuple, _)| {
            *slot_of
                .get(&tuple)
                .expect("pair row must come from the group")
        })
        .collect();
    let mut out = vec![0.0; system.rows.len()];
    for (r, row) in system.rows.iter().enumerate() {
        for (&(_, mult), &slot) in pairs.iter().zip(&slots) {
            out[r] += row.coefs[slot] * mult as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use paq_lang::parse_paql;
    use paq_relational::{DataType, Schema, Value};

    /// Deterministic table of `n` tuples with two numeric attributes.
    fn table(n: usize) -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("value", DataType::Float),
            ("weight", DataType::Float),
            ("grade", DataType::Str),
        ]));
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n {
            let v = (next() % 100) as f64 / 10.0 + 1.0;
            let w = (next() % 50) as f64 / 10.0 + 0.5;
            let g = if next() % 4 == 0 { "low" } else { "high" };
            t.push_row(vec![Value::Float(v), Value::Float(w), g.into()])
                .unwrap();
        }
        t
    }

    fn partition(t: &Table, tau: usize) -> Partitioning {
        Partitioner::new(PartitionConfig::by_size(
            vec!["value".into(), "weight".into()],
            tau,
        ))
        .partition(t)
        .unwrap()
    }

    #[test]
    fn produces_feasible_package() {
        let t = table(200);
        let p = partition(&t, 25);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 8 AND SUM(P.weight) <= 20 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let sr = SketchRefine::default();
        let (pkg, report) = sr.evaluate_with_report(&q, &t, &p).unwrap();
        assert!(
            pkg.satisfies(&q, &t, 1e-6).unwrap(),
            "package must be feasible"
        );
        assert_eq!(pkg.cardinality(), 8);
        assert!(report.solver_calls >= 2, "sketch + at least one refine");
        assert!(report.groups_refined >= 1);
    }

    #[test]
    fn approximation_close_to_direct() {
        let t = table(150);
        let p = partition(&t, 20);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 6 AND SUM(P.weight) <= 18 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let direct_pkg = Direct::default().evaluate(&q, &t).unwrap();
        let sr_pkg = SketchRefine::default().evaluate_with(&q, &t, &p).unwrap();
        let obj_d = direct_pkg.objective_value(&q, &t).unwrap();
        let obj_s = sr_pkg.objective_value(&q, &t).unwrap();
        // Approximation ratio Obj_D / Obj_S for maximization; the paper
        // observes ratios close to 1 and we only require sanity here.
        let ratio = obj_d / obj_s;
        assert!(
            ratio >= 1.0 - 1e-9,
            "SKETCHREFINE cannot beat DIRECT: {ratio}"
        );
        assert!(ratio < 3.0, "approximation unexpectedly bad: {ratio}");
    }

    #[test]
    fn minimization_query_feasible_and_sane() {
        let t = table(150);
        let p = partition(&t, 20);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 5 AND SUM(P.value) >= 20 \
             MINIMIZE SUM(P.weight)",
        )
        .unwrap();
        let direct_obj = Direct::default()
            .evaluate(&q, &t)
            .unwrap()
            .objective_value(&q, &t)
            .unwrap();
        let pkg = SketchRefine::default().evaluate_with(&q, &t, &p).unwrap();
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
        let obj = pkg.objective_value(&q, &t).unwrap();
        assert!(obj >= direct_obj - 1e-9, "cannot beat the optimum");
    }

    #[test]
    fn base_predicate_filters_groups() {
        let t = table(120);
        let p = partition(&t, 15);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             WHERE R.grade = 'high' \
             SUCH THAT COUNT(P.*) = 4 MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let pkg = SketchRefine::default().evaluate_with(&q, &t, &p).unwrap();
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
        for &(row, _) in pkg.members() {
            assert_eq!(t.value(row, "grade").unwrap(), Value::from("high"));
        }
    }

    #[test]
    fn repeat_constraint_respected_through_refine() {
        let t = table(60);
        let p = partition(&t, 10);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 1 \
             SUCH THAT COUNT(P.*) = 10 MINIMIZE SUM(P.weight)",
        )
        .unwrap();
        let pkg = SketchRefine::default().evaluate_with(&q, &t, &p).unwrap();
        assert!(pkg.max_multiplicity() <= 2);
        assert_eq!(pkg.cardinality(), 10);
    }

    #[test]
    fn infeasible_query_reported() {
        let t = table(30);
        let p = partition(&t, 8);
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM R REPEAT 0 SUCH THAT COUNT(P.*) = 500")
            .unwrap();
        match SketchRefine::default().evaluate_with(&q, &t, &p) {
            Err(e) if e.is_infeasible() => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_group_degenerates_to_near_direct() {
        let t = table(40);
        let p = partition(&t, 1000); // one group
        assert_eq!(p.num_groups(), 1);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 5 MINIMIZE SUM(P.weight)",
        )
        .unwrap();
        let direct_obj = Direct::default()
            .evaluate(&q, &t)
            .unwrap()
            .objective_value(&q, &t)
            .unwrap();
        let pkg = SketchRefine::default().evaluate_with(&q, &t, &p).unwrap();
        let obj = pkg.objective_value(&q, &t).unwrap();
        // With a single group the refine step solves the full problem.
        assert!((obj - direct_obj).abs() < 1e-9);
    }

    #[test]
    fn default_evaluate_builds_partitioning() {
        let t = table(100);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 4 AND SUM(P.weight) <= 12 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let pkg = SketchRefine::default().evaluate(&q, &t).unwrap();
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
    }

    #[test]
    fn hybrid_sketch_rescues_tight_equality() {
        // An equality constraint on an attribute whose group means
        // cannot hit the target exactly: the plain sketch is likely
        // infeasible, the hybrid sketch (inlining real tuples) is not.
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for v in [1.0, 2.0, 3.0, 10.0, 20.0, 30.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        // Quad-tree splits into groups like {1,2,3} (mean 2), {10},
        // {20,30} — no multiset of group means with these caps sums to
        // exactly 13, so the plain sketch is infeasible.
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 3))
            .partition(&t)
            .unwrap();
        assert!(p.num_groups() >= 2);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2 AND SUM(P.x) = 13 MINIMIZE SUM(P.x)",
        )
        .unwrap();
        // Exact package: {3, 10}.
        let sr = SketchRefine::default();
        let (pkg, report) = sr.evaluate_with_report(&q, &t, &p).unwrap();
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
        assert_eq!(
            pkg.aggregate(&t, paq_relational::agg::AggFunc::Sum, "x")
                .unwrap(),
            13.0
        );
        assert!(
            report.used_hybrid,
            "plain sketch cannot hit 13 from means 2/20"
        );
    }

    #[test]
    fn hybrid_disabled_reports_possibly_false_infeasibility() {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for v in [1.0, 2.0, 3.0, 10.0, 20.0, 30.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 3))
            .partition(&t)
            .unwrap();
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2 AND SUM(P.x) = 13 MINIMIZE SUM(P.x)",
        )
        .unwrap();
        let sr = SketchRefine::default().with_options(SketchRefineOptions {
            use_hybrid_sketch: false,
            ..SketchRefineOptions::default()
        });
        match sr.evaluate_with(&q, &t, &p) {
            Err(EngineError::Infeasible {
                possibly_false: true,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Data where the required package needs non-centroid tuples from
    /// *two* groups at once: the plain sketch AND every hybrid sketch
    /// are infeasible, so only the §4.4 strategy-2/4 fallbacks succeed.
    fn two_group_trap() -> (Table, Partitioning, paq_lang::PackageQuery) {
        let mut t = Table::new(Schema::from_pairs(&[("x", DataType::Float)]));
        for v in [1.0, 2.0, 3.0, 10.0, 20.0, 31.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into()], 3))
            .partition(&t)
            .unwrap();
        // Only {3, 31} = 34 works; 3 and 31 live in different groups
        // and neither is its group's centroid.
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2 AND SUM(P.x) = 34 MINIMIZE SUM(P.x)",
        )
        .unwrap();
        (t, p, q)
    }

    #[test]
    fn merge_fallback_rescues_two_group_trap() {
        let (t, p, q) = two_group_trap();
        // Without fallbacks: (possibly false) infeasibility.
        match SketchRefine::default().evaluate_with(&q, &t, &p) {
            Err(EngineError::Infeasible {
                possibly_false: true,
            }) => {}
            other => panic!("expected false infeasibility, got {other:?}"),
        }
        // Strategy 4: merging reduces toward the unpartitioned problem.
        let sr = SketchRefine::default().with_options(SketchRefineOptions {
            merge_rounds: 3,
            ..SketchRefineOptions::default()
        });
        let (pkg, report) = sr.evaluate_with_report(&q, &t, &p).unwrap();
        assert!(report.merges >= 1);
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
        assert_eq!(
            pkg.aggregate(&t, paq_relational::agg::AggFunc::Sum, "x")
                .unwrap(),
            34.0
        );
    }

    #[test]
    fn attribute_drop_fallback_uses_infeasibility_diagnostic() {
        // Tuples (x, y) where the required pair {x=3, x=31} shares
        // y = 0.5. x has the dominant spread, so the quad tree splits
        // on x and separates the pair into sketch-hostile groups; the
        // sketch's infeasibility diagnostic implicates x, strategy 3
        // drops it, and the resulting y-partitioning puts the pair in
        // one group.
        let mut t = Table::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
        ]));
        for (x, y) in [
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.5),
            (10.0, 0.0),
            (20.0, 0.0),
            (31.0, 0.5),
        ] {
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        let p = Partitioner::new(PartitionConfig::by_size(vec!["x".into(), "y".into()], 3))
            .partition(&t)
            .unwrap();
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 2 AND SUM(P.x) = 34 MINIMIZE SUM(P.x)",
        )
        .unwrap();
        // Hybrid off to force the ladder; only strategy 3 enabled.
        let sr = SketchRefine::default().with_options(SketchRefineOptions {
            use_hybrid_sketch: false,
            drop_attribute_rounds: 2,
            ..SketchRefineOptions::default()
        });
        match sr.evaluate_with_report(&q, &t, &p) {
            Ok((pkg, report)) => {
                assert!(report.attribute_drops >= 1);
                assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
                assert_eq!(
                    pkg.aggregate(&t, paq_relational::agg::AggFunc::Sum, "x")
                        .unwrap(),
                    34.0
                );
            }
            Err(e) => panic!("strategy 3 should rescue this query: {e}"),
        }
    }

    #[test]
    fn repartition_fallback_rescues_two_group_trap() {
        let (t, p, q) = two_group_trap();
        // Strategy 2: τ halves 3 → 1; singleton groups make the sketch
        // exact. Hybrid disabled to isolate the strategy.
        let sr = SketchRefine::default().with_options(SketchRefineOptions {
            use_hybrid_sketch: false,
            repartition_rounds: 4,
            ..SketchRefineOptions::default()
        });
        let (pkg, report) = sr.evaluate_with_report(&q, &t, &p).unwrap();
        assert!(report.repartitions >= 1);
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
    }

    #[test]
    fn sketch_group_limit_coarsens_but_still_solves() {
        let t = table(120);
        let p = partition(&t, 2); // many tiny groups
        assert!(p.num_groups() > 16);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 5 AND SUM(P.weight) <= 14 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let sr = SketchRefine::default().with_options(SketchRefineOptions {
            sketch_group_limit: Some(8),
            ..SketchRefineOptions::default()
        });
        let (pkg, _) = sr.evaluate_with_report(&q, &t, &p).unwrap();
        assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
    }

    #[test]
    fn solver_call_budget_bounds_backtracking() {
        let t = table(100);
        let p = partition(&t, 10);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 6 AND SUM(P.weight) <= 15 \
             MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let sr = SketchRefine::default().with_options(SketchRefineOptions {
            max_solver_calls: 3,
            ..SketchRefineOptions::default()
        });
        // Either it finishes within 3 calls or reports infeasibility —
        // never panics or exceeds the budget wildly.
        match sr.evaluate_with_report(&q, &t, &p) {
            Ok((pkg, report)) => {
                assert!(report.solver_calls <= 4);
                assert!(pkg.satisfies(&q, &t, 1e-6).unwrap());
            }
            Err(e) => assert!(e.is_infeasible()),
        }
    }

    #[test]
    fn telemetry_sees_many_small_calls() {
        let t = table(120);
        let p = partition(&t, 12);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 6 MINIMIZE SUM(P.weight)",
        )
        .unwrap();
        let tel = Arc::new(Telemetry::new());
        let sr = SketchRefine::default().with_telemetry(Arc::clone(&tel));
        sr.evaluate_with(&q, &t, &p).unwrap();
        assert!(tel.calls() >= 2, "sketch + refines, got {}", tel.calls());
    }
}
