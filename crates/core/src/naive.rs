//! The naive SQL self-join formulation (§2 of the paper, Figure 1).
//!
//! When a package query fixes its cardinality (`COUNT(P.*) = c`) and
//! forbids repetition (`REPEAT 0`), traditional SQL can express it as a
//! `c`-way self-join with `R1.pk < R2.pk < … < Rc.pk` ordering
//! predicates. This module reproduces that evaluation strategy over the
//! relational substrate: ordered `c`-subset enumeration with the global
//! predicates checked on each complete candidate and the best objective
//! retained — the same work a join-based plan performs, and the
//! exponential baseline of Figure 1.

use paq_lang::ast::{AggTerm, GlobalPredicate, PackageQuery};
use paq_lang::{base_relation_rows, linear_system};
use paq_relational::expr::CmpOp;
use paq_relational::Table;

use crate::error::{EngineError, EngineResult};
use crate::package::Package;
use crate::Evaluator;

/// The self-join baseline evaluator.
#[derive(Debug, Clone, Default)]
pub struct NaiveSelfJoin {
    /// Safety valve on enumerated candidates (the real SQL formulation
    /// has none — it simply runs for hours; Figure 1 stops at ~24h).
    pub max_candidates: Option<u64>,
}

impl NaiveSelfJoin {
    /// Unlimited enumeration (the paper's setting).
    pub fn unlimited() -> Self {
        NaiveSelfJoin {
            max_candidates: None,
        }
    }

    /// Enumeration capped at `max` candidate packages.
    pub fn capped(max: u64) -> Self {
        NaiveSelfJoin {
            max_candidates: Some(max),
        }
    }

    /// Extract the fixed cardinality required by the self-join
    /// formulation (`COUNT(P.*) = c`).
    fn fixed_cardinality(query: &PackageQuery) -> Option<u64> {
        for pred in &query.such_that {
            match pred {
                GlobalPredicate::Cmp {
                    lhs: AggTerm::Agg(paq_lang::AggExpr::Count),
                    op: CmpOp::Eq,
                    rhs: AggTerm::Const(c),
                } if *c >= 0.0 && c.fract() == 0.0 => return Some(*c as u64),
                GlobalPredicate::Cmp {
                    lhs: AggTerm::Const(c),
                    op: CmpOp::Eq,
                    rhs: AggTerm::Agg(paq_lang::AggExpr::Count),
                } if *c >= 0.0 && c.fract() == 0.0 => return Some(*c as u64),
                _ => {}
            }
        }
        None
    }
}

impl Evaluator for NaiveSelfJoin {
    fn name(&self) -> &'static str {
        "SQL self-join"
    }

    fn evaluate(&self, query: &PackageQuery, table: &Table) -> EngineResult<Package> {
        let Some(c) = Self::fixed_cardinality(query) else {
            return Err(EngineError::Unsupported(
                "the self-join formulation requires a fixed cardinality \
                 (COUNT(P.*) = c); unbounded packages need recursion (§2)"
                    .into(),
            ));
        };
        if query.max_multiplicity() != Some(1) {
            return Err(EngineError::Unsupported(
                "the self-join formulation requires REPEAT 0 \
                 (R1.pk < R2.pk < … orders distinct tuples)"
                    .into(),
            ));
        }

        let all: Vec<usize> = (0..table.num_rows()).collect();
        let rows = base_relation_rows(query, table, &all)?;
        let system = linear_system(query, table, &rows)?;
        let minimize = system.sense == paq_solver::Sense::Minimize;
        let c = c as usize;
        if c > rows.len() {
            return Err(EngineError::infeasible());
        }

        // Ordered c-subset enumeration = the c-way self-join with
        // R1.pk < R2.pk < … predicates.
        let mut chosen = vec![0usize; c]; // positions into `rows`
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut candidates = 0u64;
        enumerate(
            &mut chosen,
            0,
            0,
            rows.len(),
            &mut |subset: &[usize]| -> bool {
                candidates += 1;
                if let Some(max) = self.max_candidates {
                    if candidates > max {
                        return false; // stop enumeration
                    }
                }
                // Check every constraint row on the complete candidate.
                let feasible = system.rows.iter().all(|row| {
                    let v: f64 = subset.iter().map(|&s| row.coefs[s]).sum();
                    let scale = 1.0_f64.max(v.abs());
                    v >= row.lo - 1e-9 * scale && v <= row.hi + 1e-9 * scale
                });
                if feasible {
                    let obj: f64 = subset.iter().map(|&s| system.objective[s]).sum();
                    let better = match &best {
                        None => true,
                        Some((b, _)) => {
                            if minimize {
                                obj < *b
                            } else {
                                obj > *b
                            }
                        }
                    };
                    if better {
                        best = Some((obj, subset.to_vec()));
                    }
                }
                true
            },
        );

        match best {
            Some((_, subset)) => Ok(Package::from_pairs(
                subset.into_iter().map(|s| (rows[s], 1u64)),
            )),
            None => Err(EngineError::infeasible()),
        }
    }
}

/// Recursive ordered-subset enumeration; `visit` returns `false` to
/// abort. Returns `false` when aborted.
fn enumerate(
    chosen: &mut Vec<usize>,
    depth: usize,
    start: usize,
    n: usize,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if depth == chosen.len() {
        return visit(chosen);
    }
    for i in start..n {
        chosen[depth] = i;
        if !enumerate(chosen, depth + 1, i + 1, n, visit) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use paq_lang::parse_paql;
    use paq_relational::{DataType, Schema, Value};

    fn table(n: usize) -> Table {
        let mut t = Table::new(Schema::from_pairs(&[
            ("value", DataType::Float),
            ("weight", DataType::Float),
        ]));
        for i in 0..n {
            t.push_row(vec![
                Value::Float(((i * 31) % 17) as f64 + 1.0),
                Value::Float(((i * 13) % 7) as f64 + 1.0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn matches_direct_on_small_instances() {
        let t = table(25);
        for card in 1..=4 {
            let q = parse_paql(&format!(
                "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
                 SUCH THAT COUNT(P.*) = {card} AND SUM(P.weight) <= 12 \
                 MAXIMIZE SUM(P.value)"
            ))
            .unwrap();
            let naive = NaiveSelfJoin::unlimited().evaluate(&q, &t).unwrap();
            let direct = Direct::default().evaluate(&q, &t).unwrap();
            let obj_n = naive.objective_value(&q, &t).unwrap();
            let obj_d = direct.objective_value(&q, &t).unwrap();
            assert!(
                (obj_n - obj_d).abs() < 1e-9,
                "cardinality {card}: naive {obj_n} vs direct {obj_d}"
            );
            assert!(naive.satisfies(&q, &t, 1e-9).unwrap());
        }
    }

    #[test]
    fn requires_fixed_cardinality() {
        let t = table(5);
        let q =
            parse_paql("SELECT PACKAGE(R) AS P FROM R REPEAT 0 SUCH THAT COUNT(P.*) <= 3").unwrap();
        match NaiveSelfJoin::unlimited().evaluate(&q, &t) {
            Err(EngineError::Unsupported(msg)) => assert!(msg.contains("cardinality")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn requires_repeat_zero() {
        let t = table(5);
        let q = parse_paql("SELECT PACKAGE(R) AS P FROM R SUCH THAT COUNT(P.*) = 2").unwrap();
        match NaiveSelfJoin::unlimited().evaluate(&q, &t) {
            Err(EngineError::Unsupported(msg)) => assert!(msg.contains("REPEAT 0")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_when_no_subset_qualifies() {
        let t = table(6);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 3 AND SUM(P.weight) <= 0.5",
        )
        .unwrap();
        assert_eq!(
            NaiveSelfJoin::unlimited().evaluate(&q, &t),
            Err(EngineError::infeasible())
        );
    }

    #[test]
    fn cardinality_larger_than_relation_is_infeasible() {
        let t = table(3);
        let q =
            parse_paql("SELECT PACKAGE(R) AS P FROM R REPEAT 0 SUCH THAT COUNT(P.*) = 10").unwrap();
        assert_eq!(
            NaiveSelfJoin::unlimited().evaluate(&q, &t),
            Err(EngineError::infeasible())
        );
    }

    #[test]
    fn base_predicate_prefilters() {
        let t = table(12);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             WHERE R.weight <= 3 \
             SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        let pkg = NaiveSelfJoin::unlimited().evaluate(&q, &t).unwrap();
        assert!(pkg.satisfies(&q, &t, 1e-9).unwrap());
    }

    #[test]
    fn candidate_cap_stops_early() {
        let t = table(30);
        let q = parse_paql(
            "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
             SUCH THAT COUNT(P.*) = 4 MAXIMIZE SUM(P.value)",
        )
        .unwrap();
        // The cap makes the result a best-effort answer over the first
        // few candidates (or infeasible if none qualified in time).
        let capped = NaiveSelfJoin::capped(10).evaluate(&q, &t);
        match capped {
            Ok(pkg) => assert_eq!(pkg.cardinality(), 4),
            Err(e) => assert!(e.is_infeasible()),
        }
    }
}
