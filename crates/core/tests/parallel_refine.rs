//! Determinism of wave-based parallel REFINE.
//!
//! The wave engine speculatively solves pending group ILPs against a
//! snapshot of the package state and only consumes a result when its
//! constraint bounds still match exactly, so the produced package must
//! be identical to the sequential Algorithm 2 path — for any thread
//! count. These tests pin that guarantee on both a conflict-free
//! workload (count-pinned bulk selection, where waves commit wholesale)
//! and a conflict-heavy one (a SUM window, where commits shift bounds
//! and groups are re-queued).

use paq_core::{Package, SketchRefine, SketchRefineOptions, SketchRefineReport};
use paq_lang::parse_paql;
use paq_partition::{PartitionConfig, Partitioner, Partitioning};
use paq_relational::{DataType, Schema, Table, Value};

/// Deterministic table of `n` tuples with two numeric attributes.
fn table(n: usize) -> Table {
    let mut t = Table::new(Schema::from_pairs(&[
        ("value", DataType::Float),
        ("weight", DataType::Float),
    ]));
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..n {
        let v = (next() % 1000) as f64 / 10.0 + 1.0;
        let w = (next() % 500) as f64 / 10.0 + 0.5;
        t.push_row(vec![Value::Float(v), Value::Float(w)]).unwrap();
    }
    t
}

fn partition(t: &Table, tau: usize) -> Partitioning {
    Partitioner::new(PartitionConfig::by_size(
        vec!["value".into(), "weight".into()],
        tau,
    ))
    .partition(t)
    .unwrap()
}

fn evaluate(
    query: &str,
    t: &Table,
    p: &Partitioning,
    threads: usize,
) -> (Package, SketchRefineReport) {
    let q = parse_paql(query).unwrap();
    let sr = SketchRefine::default().with_options(SketchRefineOptions {
        threads,
        ..SketchRefineOptions::default()
    });
    sr.evaluate_with_report(&q, t, p).unwrap()
}

#[test]
fn bulk_selection_spreads_and_matches_sequential() {
    // COUNT pinned to well over τ forces the sketch to spread across
    // many groups; with no other global constraint, commits never shift
    // a sibling's bounds, so waves commit wholesale.
    let t = table(600);
    let p = partition(&t, 40);
    assert!(p.num_groups() >= 8, "groups: {}", p.num_groups());
    let query = "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
                 SUCH THAT COUNT(P.*) = 300 MAXIMIZE SUM(P.value)";

    let (seq_pkg, seq_report) = evaluate(query, &t, &p, 1);
    let (par_pkg, par_report) = evaluate(query, &t, &p, 4);

    assert_eq!(
        seq_pkg.members(),
        par_pkg.members(),
        "parallel REFINE must return the sequential package"
    );
    assert_eq!(seq_report.waves, 0, "threads = 1 is the sequential path");
    assert!(par_report.waves > 0, "threads = 4 must run waves");
    assert!(
        par_report.groups_refined >= 4,
        "workload too narrow to exercise waves: {} groups refined",
        par_report.groups_refined
    );
    assert!(
        par_report.parallel_solves >= par_report.groups_refined as u64,
        "every pending group is wave-solved"
    );
    assert_eq!(
        par_report.conflict_requeues, 0,
        "count-only commits cannot shift sibling bounds"
    );
    assert_eq!(
        seq_report.solver_calls, par_report.solver_calls,
        "budget accounting mirrors the sequential call sequence"
    );
}

#[test]
fn sum_window_requeues_but_still_matches_sequential() {
    // A SUM window makes every commit shift the remaining groups'
    // bounds: speculation is invalidated, groups re-queue, and the
    // result must still be identical to the sequential path.
    let t = table(300);
    let p = partition(&t, 30);
    let query = "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
                 SUCH THAT COUNT(P.*) = 12 AND SUM(P.weight) <= 150 \
                 MAXIMIZE SUM(P.value)";

    let (seq_pkg, seq_report) = evaluate(query, &t, &p, 1);
    let (par_pkg, par_report) = evaluate(query, &t, &p, 4);

    assert_eq!(
        seq_pkg.members(),
        par_pkg.members(),
        "conflicting waves must degrade to the sequential result, not diverge"
    );
    assert_eq!(
        seq_report.solver_calls, par_report.solver_calls,
        "wasted speculative solves are not charged to the budget"
    );
    if par_report.groups_refined > 1 {
        assert!(par_report.waves > 0);
    }
}

#[test]
fn deadline_charges_consumed_solves_not_discarded_speculation() {
    // Regression test for the PR-3 review finding: the evaluation
    // deadline used to be a wall-clock `Instant`, so on an
    // oversubscribed host the speculative wave solves that conflicts
    // later discard — plus plain thread contention — consumed the
    // budget, and `threads > 1` could report possibly-false
    // infeasibility on a budget the sequential schedule met. The budget
    // is now charged by *consumed* solves only (mirroring the
    // solver-call counter), so a limit the sequential run fits must
    // also admit the parallel run — even with 8 workers time-slicing
    // few cores and a conflict-heavy workload discarding speculation.
    let t = table(300);
    let p = partition(&t, 30);
    let query = "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
                 SUCH THAT COUNT(P.*) = 12 AND SUM(P.weight) <= 150 \
                 MAXIMIZE SUM(P.value)";
    let q = parse_paql(query).unwrap();

    // Sequential run under no limit: measure what it actually consumed.
    let seq = SketchRefine::default();
    let (seq_pkg, seq_report) = seq.evaluate_with_report(&q, &t, &p).unwrap();
    let consumed = seq_report.sketch_time + seq_report.refine_time;

    // A budget the sequential schedule comfortably fits. The parallel
    // run consumes the *same* solve sequence (determinism), so with
    // consumed-solve accounting it must fit too; under the old
    // wall-clock deadline, discarded wave solves and oversubscription
    // (8 threads on this host) could spuriously expire it.
    let budget = consumed * 10 + std::time::Duration::from_millis(100);
    let par = SketchRefine::default().with_options(SketchRefineOptions {
        threads: 8,
        total_time_limit: Some(budget),
        ..SketchRefineOptions::default()
    });
    let (par_pkg, par_report) = par
        .evaluate_with_report(&q, &t, &p)
        .expect("a budget sequential fits must not expire under parallel REFINE");
    assert_eq!(seq_pkg.members(), par_pkg.members());
    assert!(
        par_report.waves > 0,
        "workload too narrow to exercise the wave path"
    );

    // And the check still exists at all: an empty budget expires
    // immediately, at any thread count.
    for threads in [1, 8] {
        let broke = SketchRefine::default().with_options(SketchRefineOptions {
            threads,
            total_time_limit: Some(std::time::Duration::ZERO),
            ..SketchRefineOptions::default()
        });
        match broke.evaluate_with(&q, &t, &p) {
            Err(e) if e.is_infeasible() => {}
            other => panic!("zero budget must report infeasibility, got {other:?}"),
        }
    }
}

#[test]
fn thread_counts_agree_pairwise() {
    let t = table(400);
    let p = partition(&t, 25);
    let query = "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
                 SUCH THAT COUNT(P.*) = 200 MINIMIZE SUM(P.weight)";
    let (pkg1, _) = evaluate(query, &t, &p, 1);
    let (pkg2, _) = evaluate(query, &t, &p, 2);
    let (pkg8, _) = evaluate(query, &t, &p, 8);
    assert_eq!(pkg1.members(), pkg2.members());
    assert_eq!(pkg1.members(), pkg8.members());
}

#[test]
fn shared_pool_reuse_matches_per_evaluation_pools() {
    use std::sync::Arc;
    let t = table(300);
    let p = partition(&t, 25);
    let q = parse_paql(
        "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
         SUCH THAT COUNT(P.*) = 150 MAXIMIZE SUM(P.value)",
    )
    .unwrap();
    let pool = Arc::new(paq_exec::ThreadPool::new(4));
    let shared = SketchRefine::default().with_pool(Arc::clone(&pool));
    let ephemeral = SketchRefine::default().with_options(SketchRefineOptions {
        threads: 4,
        ..SketchRefineOptions::default()
    });
    let (a, _) = shared.evaluate_with_report(&q, &t, &p).unwrap();
    let (b, _) = ephemeral.evaluate_with_report(&q, &t, &p).unwrap();
    let (c, _) = shared.evaluate_with_report(&q, &t, &p).unwrap();
    assert_eq!(a.members(), b.members());
    assert_eq!(a.members(), c.members());
}

#[test]
fn refine_over_a_patched_partitioning_matches_sequential() {
    // Delta-aware maintenance serves REFINE partitionings whose tail
    // rows were absorbed as in-place patches (base-prefix build + one
    // patch per appended row) rather than rebuilt from scratch. REFINE
    // must treat such a partitioning exactly like a cold one: a valid
    // disjoint cover, with the wave engine returning the sequential
    // package at every thread count.
    let t = table(560);
    let base = 520;
    let mut p = Partitioner::new(PartitionConfig::by_size(
        vec!["value".into(), "weight".into()],
        40,
    ))
    .partition_prefix(&t, base)
    .unwrap();
    for row in base..t.num_rows() {
        p.patch_append(&t, row).unwrap();
    }
    assert!(p.is_disjoint_cover(t.num_rows()), "patches must keep cover");

    let query = "SELECT PACKAGE(R) AS P FROM R REPEAT 0 \
                 SUCH THAT COUNT(P.*) = 250 MAXIMIZE SUM(P.value)";
    let (seq_pkg, _) = evaluate(query, &t, &p, 1);
    let (par_pkg, par_report) = evaluate(query, &t, &p, 4);

    assert_eq!(
        seq_pkg.members(),
        par_pkg.members(),
        "patched partitionings must not perturb wave determinism"
    );
    assert!(
        seq_pkg.members().iter().any(|&(row, _)| row >= base),
        "the absorbed tail rows are selectable"
    );
    assert!(par_report.waves > 0, "threads = 4 must run waves");
}
